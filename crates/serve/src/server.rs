//! The serving shell: one acceptor, a readiness reactor owning every
//! connection, a bounded queue, a fixed worker pool, and a
//! graceful-shutdown protocol.
//!
//! ```text
//!   accept() ──register──▶ reactor (poll) ──try_push──▶ [queue] ──pop──▶ worker × N
//!      │ too many conns?      │   ▲    │ full?                             │
//!      └──▶ 503 (rejector)    │   └────┴──▶ 503 inline, conn stays open    └─▶ Handler
//!                             │  completions (waker)◀───────────────────────────┘
//! ```
//!
//! * The **acceptor** never does request work; it only admits (hand the
//!   socket to the reactor) or rejects (the connection-count valve), so
//!   saturation answers in microseconds even when every worker is busy.
//! * The **reactor** is a single thread multiplexing every live
//!   connection over [`crate::reactor`]'s `poll`: it reads nonblocking
//!   sockets into per-connection buffers, cuts complete requests off
//!   the front ([`crate::conn`] keeps pipelined surplus), dispatches at
//!   most one request per connection into the admission queue, and
//!   writes completed responses back. Keep-alive is the default
//!   (HTTP/1.1 semantics), bounded by a per-connection request budget
//!   and a per-request read deadline — re-armed for every request, so
//!   slowloris protection does not weaken on long-lived connections.
//! * **Workers** only compute: pop a request, run the [`Handler`]
//!   (panics cost a 500, not a thread), hand the response back to the
//!   reactor via the completion list + waker.
//! * **Queue saturation** answers `503` + `Retry-After` inline from the
//!   reactor and *keeps the connection open* — a rejected request must
//!   not cost the client its warm connection. Parse errors close, as
//!   HTTP requires once framing is lost.
//! * **Shutdown** is a control signal (a [`Response::shutdown`] flag
//!   set by the handler, or [`Server::shutdown`] called directly):
//!   admissions stop, dispatched requests complete and flush, workers
//!   exit, the acceptor is woken by a loopback connect so nothing
//!   blocks forever.

use crate::conn::{Conn, ConnState, Fill};
use crate::http::{self, HttpError, Request, Response};
use crate::queue::{Push, Queue};
use crate::reactor::{self, Interest, WakeReceiver, Waker};
use crate::stats::ServeStats;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The application side of the server: maps one parsed request to one
/// response. Implementations must be callable from many worker threads
/// at once.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request) -> Response;
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub workers: usize,
    /// Admission-queue depth (`0` is clamped to 1). Bounds worst-case
    /// queueing delay; beyond it the server answers 503.
    pub queue_depth: usize,
    /// Total budget for reading one request (head + body), re-armed per
    /// request. A peer trickling one byte per second cannot hold a
    /// connection slot any longer than a stalled one, no matter how
    /// many requests it already completed.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (the rejector path; reactor
    /// writes are nonblocking).
    pub write_timeout: Duration,
    /// Request-body cap in bytes; larger payloads answer 413.
    pub max_body_bytes: usize,
    /// Live-connection cap; beyond it new sockets get a one-shot 503
    /// from a rejector thread instead of a reactor slot.
    pub max_connections: usize,
    /// Requests served per connection before the server answers
    /// `Connection: close` (bounds per-connection state lifetime).
    pub max_requests_per_conn: u64,
    /// Test-only: hold each request in the worker for this long before
    /// handling, to make saturation deterministic in integration tests.
    pub debug_handle_delay: Option<Duration>,
    /// Test-only: make the first N rejector threads panic after taking
    /// their slot, to regression-test the slot drop guard.
    pub debug_reject_panics: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            max_connections: 1024,
            max_requests_per_conn: 1024,
            debug_handle_delay: None,
            debug_reject_panics: 0,
        }
    }
}

/// One request handed from the reactor to the worker pool.
struct Job {
    token: u64,
    request: Request,
    at: Instant,
}

/// One finished response handed back from a worker to the reactor.
struct Completion {
    token: u64,
    response: Response,
    at: Instant,
}

/// State shared between acceptor, workers and the reactor thread.
struct ReactorShared {
    /// Sockets accepted but not yet adopted by the reactor.
    registrations: Mutex<Vec<TcpStream>>,
    /// Responses computed but not yet staged onto their connection.
    completions: Mutex<Vec<Completion>>,
    /// Pops the reactor out of `poll` after pushing to either list.
    waker: Waker,
    /// Live connections (acceptor-side admission valve).
    conn_count: AtomicUsize,
}

/// Coordinates the one-shot transition into shutdown.
struct ShutdownSignal {
    flag: AtomicBool,
    queue: Arc<Queue<Job>>,
    waker: Waker,
    addr: SocketAddr,
}

impl ShutdownSignal {
    /// Begins shutdown exactly once: close admissions, wake the
    /// reactor, wake the acceptor with a loopback connect.
    fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        self.waker.wake();
        // The acceptor may be blocked in accept(); a throwaway connect
        // wakes it so it can observe the flag and exit. A wildcard bind
        // address is not connectable — rewrite it to the loopback of
        // the same family — and a transiently failing connect (fd
        // exhaustion under the very flood that prompted shutdown) gets
        // a few retries so join() cannot hang on a sleeping acceptor.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        for attempt in 0..10 {
            match TcpStream::connect_timeout(&wake, Duration::from_millis(200)) {
                Ok(_) => break,
                Err(_) if attempt < 9 => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => {} // acceptor will still exit on its next accept
            }
        }
    }

    fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or let the handler trigger it) and then join
/// via [`Server::shutdown`]/[`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    acceptor: JoinHandle<()>,
    reactor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts the
    /// acceptor, the reactor, and the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the listener cannot bind,
    /// the waker pair cannot be created, or a thread cannot spawn.
    pub fn start(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn Handler>,
        stats: Arc<ServeStats>,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (waker, wake_rx) = reactor::wake_pair()?;
        let queue = Arc::new(Queue::new(options.queue_depth));
        let signal = Arc::new(ShutdownSignal {
            flag: AtomicBool::new(false),
            queue: Arc::clone(&queue),
            waker: waker.clone(),
            addr,
        });
        let shared = Arc::new(ReactorShared {
            registrations: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker,
            conn_count: AtomicUsize::new(0),
        });
        let workers_n = if options.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            options.workers
        };
        // If any later spawn fails, already-spawned threads must not be
        // leaked blocked forever: close the queue, wake the reactor,
        // join what exists, then surface the error.
        let cleanup = |threads: Vec<JoinHandle<()>>, e: io::Error| -> io::Error {
            queue.close();
            shared.waker.wake();
            for thread in threads {
                let _ = thread.join();
            }
            e
        };
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let stats = Arc::clone(&stats);
            let shared = Arc::clone(&shared);
            let options = options.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&queue, &*handler, &stats, &shared, &options));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => return Err(cleanup(workers, e)),
            }
        }
        let reactor = {
            let ctx = ReactorCtx {
                shared: Arc::clone(&shared),
                queue: Arc::clone(&queue),
                signal: Arc::clone(&signal),
                stats: Arc::clone(&stats),
                options: options.clone(),
            };
            let spawned = std::thread::Builder::new()
                .name("serve-reactor".to_string())
                .spawn(move || reactor_loop(ctx, wake_rx));
            match spawned {
                Ok(handle) => handle,
                Err(e) => return Err(cleanup(workers, e)),
            }
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            let acceptor_signal = Arc::clone(&signal);
            let options = options.clone();
            let spawned = std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || {
                    acceptor_loop(&listener, &shared, &stats, &acceptor_signal, &options)
                });
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // The reactor must exit too before the error returns.
                    signal.trigger();
                    let mut threads = workers;
                    threads.push(reactor);
                    return Err(cleanup(threads, e));
                }
            }
        };
        Ok(Server {
            addr,
            signal,
            acceptor,
            reactor,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once shutdown has been triggered (by any path).
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Triggers graceful shutdown and joins every thread: admissions
    /// stop, dispatched requests finish and flush, workers exit.
    pub fn shutdown(self) {
        self.signal.trigger();
        self.join();
    }

    /// Blocks until the server shuts down through some other path (the
    /// `/admin/shutdown` control endpoint), then joins every thread.
    pub fn wait(self) {
        self.join();
    }

    fn join(self) {
        let _ = self.acceptor.join();
        let _ = self.reactor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &ReactorShared,
    stats: &Arc<ServeStats>,
    signal: &ShutdownSignal,
    options: &ServeOptions,
) {
    let reject_poison = Arc::new(AtomicU64::new(options.debug_reject_panics));
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if signal.is_triggered() {
                    return;
                }
                // Transient failure (aborted connection) or resource
                // exhaustion (EMFILE under a flood): back off briefly
                // instead of spinning a core the reactor needs to drain
                // the very connections holding the descriptors.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if signal.is_triggered() {
            // The wake-up connect (or a late client); either way,
            // admissions are over.
            drop(stream);
            return;
        }
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        if shared.conn_count.load(Ordering::SeqCst) >= options.max_connections.max(1) {
            // The reactor is at its connection budget: answer a one-shot
            // 503 from a short-lived rejector thread rather than taking
            // a slot that would starve established keep-alive peers.
            stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            reject_busy(
                stream,
                Arc::clone(stats),
                options.max_body_bytes,
                Arc::clone(&reject_poison),
            );
            continue;
        }
        shared.conn_count.fetch_add(1, Ordering::SeqCst);
        shared.registrations.lock().unwrap().push(stream);
        shared.waker.wake();
    }
}

/// Concurrent rejection threads beyond which the server stops writing
/// polite 503s and just drops the connection (an extreme-flood valve;
/// a dropped connection is still backpressure).
const MAX_REJECTORS: u64 = 64;

/// Owns one slot of the [`MAX_REJECTORS`] budget; gives it back on drop.
///
/// The decrement must live in a drop guard, not at the end of the
/// rejector body: a rejector that panics mid-rejection would otherwise
/// leak its slot forever, and [`MAX_REJECTORS`] leaks later the valve
/// silently stops answering 503s at all.
struct RejectorSlot(Arc<ServeStats>);

impl Drop for RejectorSlot {
    fn drop(&mut self) {
        self.0.rejectors.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Answers 503 + `Retry-After` without blocking the acceptor: the
/// request must be *read* before the response is written and the socket
/// closed (closing with unread bytes makes TCP send RST and may discard
/// the response), and reading waits on the peer — so each rejection
/// runs on a short-lived thread with tight timeouts.
fn reject_busy(
    stream: TcpStream,
    stats: Arc<ServeStats>,
    max_body_bytes: usize,
    poison: Arc<AtomicU64>,
) {
    if stats.rejectors.fetch_add(1, Ordering::SeqCst) >= MAX_REJECTORS {
        stats.rejectors.fetch_sub(1, Ordering::SeqCst);
        return; // flood valve: drop without ceremony
    }
    let slot = RejectorSlot(Arc::clone(&stats));
    // From here on the slot is owned by the guard: every exit from the
    // closure — return, panic, or the closure being dropped unspawned —
    // runs the decrement exactly once.
    let spawned = std::thread::Builder::new()
        .name("serve-reject".to_string())
        .spawn(move || {
            let _slot = slot;
            if poison
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                panic!("debug_reject_panics: poisoned rejector");
            }
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            // Drain the request (under the server's own body cap) so
            // the close after the 503 is a clean FIN, not an RST racing
            // the response off the wire.
            let deadline = Instant::now() + Duration::from_millis(500);
            let fully_read = http::read_request(
                &mut DeadlineStream {
                    stream: &stream,
                    deadline,
                },
                max_body_bytes,
            )
            .is_ok();
            let mut response = Response::json(
                503,
                "{\"error\": \"server saturated: too many connections\", \"retry\": true}",
            );
            response.retry_after = Some(1);
            let _ = http::write_response(&mut stream, &response);
            if !fully_read {
                // The request errored mid-read (oversized body, bad
                // head): same RST hazard as the reactor's error path —
                // half-close and keep draining briefly so the 503
                // survives.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut reader = DeadlineStream {
                    stream: &stream,
                    deadline,
                };
                let mut sink = [0u8; 4096];
                while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
            }
        });
    // On spawn failure the closure is dropped unrun, which drops the
    // guard and releases the slot — nothing to do here.
    drop(spawned);
}

/// A read view of a `TcpStream` that enforces one overall deadline:
/// before every read the socket timeout is re-armed to the time
/// remaining, so the total time a peer can hold the reader — stalled
/// *or* trickling one byte per timeout — is bounded by the deadline.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        (&mut &*self.stream).read(buf)
    }
}

fn worker_loop(
    queue: &Queue<Job>,
    handler: &dyn Handler,
    stats: &ServeStats,
    shared: &ReactorShared,
    options: &ServeOptions,
) {
    while let Some(job) = queue.pop() {
        stats.queue_wait.record_duration(job.at.elapsed());
        stats.in_flight.fetch_add(1, Ordering::Relaxed);
        if let Some(delay) = options.debug_handle_delay {
            std::thread::sleep(delay);
        }
        // A panicking handler must cost one 500, not one worker thread
        // (the pool is fixed; a shrunk pool is a silent capacity leak).
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler.handle(&job.request)
        }))
        .unwrap_or_else(|_| {
            Response::json(500, "{\"error\": \"internal error handling request\"}")
        });
        stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.completions.lock().unwrap().push(Completion {
            token: job.token,
            response,
            at: job.at,
        });
        shared.waker.wake();
    }
}

/// Everything the reactor thread owns by value.
struct ReactorCtx {
    shared: Arc<ReactorShared>,
    queue: Arc<Queue<Job>>,
    signal: Arc<ShutdownSignal>,
    stats: Arc<ServeStats>,
    options: ServeOptions,
}

/// How long after shutdown the reactor keeps flushing and draining
/// before force-closing whatever remains.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

fn reactor_loop(ctx: ReactorCtx, mut wake_rx: WakeReceiver) {
    // Pipelining backpressure: a connection's unparsed buffer may hold
    // one maximal request plus a chunk of the next before the reactor
    // stops reading it until responses drain the front.
    let high_water = ctx.options.max_body_bytes + http::MAX_HEAD_BYTES + 4096;
    let max_requests = ctx.options.max_requests_per_conn.max(1);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    // Jobs pushed but not yet completed (their connection may die
    // first; the count must survive that).
    let mut outstanding: usize = 0;
    let mut grace: Option<Instant> = None;

    loop {
        let now = Instant::now();

        // 1. Adopt newly accepted sockets.
        let fresh: Vec<TcpStream> = std::mem::take(&mut *ctx.shared.registrations.lock().unwrap());
        for stream in fresh {
            if ctx.signal.is_triggered() {
                ctx.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
                continue; // admissions are over
            }
            match Conn::new(stream, ctx.options.read_timeout) {
                Ok(conn) => {
                    conns.insert(next_token, conn);
                    next_token += 1;
                }
                Err(_) => {
                    ctx.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }

        // 2. Stage completed responses.
        let done: Vec<Completion> = std::mem::take(&mut *ctx.shared.completions.lock().unwrap());
        for completion in done {
            outstanding -= 1;
            let wants_shutdown = completion.response.shutdown;
            if let Some(conn) = conns.get_mut(&completion.token) {
                let keep = conn.pending_keep && !wants_shutdown && !ctx.signal.is_triggered();
                conn.stage(&completion.response, keep);
                conn.served += 1;
                ctx.stats.count_status(completion.response.status);
                ctx.stats.latency.record_duration(completion.at.elapsed());
                if keep {
                    conn.state = ConnState::Reading;
                    conn.deadline = Instant::now() + ctx.options.read_timeout;
                } else {
                    conn.state = ConnState::Reading;
                    conn.close_after_flush = true;
                }
            } else {
                // The connection died while its request was in flight.
                ctx.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            if wants_shutdown {
                ctx.signal.trigger();
            }
        }

        // 3. Advance every connection's state machine; drop the dead.
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            let alive = advance(
                token,
                conn,
                now,
                &ctx.queue,
                &ctx.stats,
                &ctx.signal,
                &ctx.options,
                max_requests,
                &mut outstanding,
            );
            if !alive {
                dead.push(token);
            }
        }
        for token in dead {
            conns.remove(&token);
            ctx.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        }

        // 4. Shutdown: once nothing is dispatched and every buffer has
        // flushed (or the grace period expires), close up shop.
        if ctx.signal.is_triggered() {
            let grace_at = *grace.get_or_insert(now + SHUTDOWN_GRACE);
            let all_flushed = conns
                .values()
                .all(|c| c.write_buf.is_empty() && c.state != ConnState::Dispatched);
            if (outstanding == 0 && all_flushed && conns.is_empty()) || now >= grace_at {
                ctx.shared
                    .conn_count
                    .fetch_sub(conns.len(), Ordering::SeqCst);
                return;
            }
        }

        // 5. Sleep until a socket is ready, a deadline is due, or a
        // waker byte arrives (registration, completion, shutdown).
        let mut entries: Vec<(std::os::unix::io::RawFd, Interest)> =
            vec![(wake_rx.raw_fd(), Interest::READ)];
        let mut tokens: Vec<u64> = vec![u64::MAX];
        let mut next_deadline: Option<Instant> = grace;
        for (&token, conn) in &conns {
            let interest = conn.interest(high_water);
            if interest.read || interest.write {
                entries.push((conn.raw_fd(), interest));
                tokens.push(token);
            }
            if conn.state != ConnState::Dispatched {
                next_deadline = Some(next_deadline.map_or(conn.deadline, |d| d.min(conn.deadline)));
            }
        }
        let timeout = next_deadline.map(|d| d.saturating_duration_since(now));
        let ready = reactor::wait(&entries, timeout).unwrap_or_default();

        // 6. Service readiness: pull bytes (or drain the closing
        // handshake); the next advance pass does the parsing.
        let mut dead: Vec<u64> = Vec::new();
        for idx in ready {
            if idx == 0 {
                wake_rx.drain();
                continue;
            }
            let token = tokens[idx];
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let outcome = if conn.state == ConnState::Draining {
                conn.drain_discard()
            } else {
                conn.fill(high_water)
            };
            match outcome {
                Ok(Fill::Eof) if conn.state == ConnState::Draining => dead.push(token),
                Ok(_) => {}
                Err(_) => {
                    if !conn.write_buf.is_empty() {
                        ctx.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    dead.push(token);
                }
            }
        }
        for token in dead {
            conns.remove(&token);
            ctx.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Advances one connection: flush, parse, dispatch, enforce deadlines.
/// Returns `false` when the connection should be dropped.
#[allow(clippy::too_many_arguments)]
fn advance(
    token: u64,
    conn: &mut Conn,
    now: Instant,
    queue: &Queue<Job>,
    stats: &ServeStats,
    signal: &ShutdownSignal,
    options: &ServeOptions,
    max_requests: u64,
    outstanding: &mut usize,
) -> bool {
    if flush_or_drop(conn, stats).is_err() {
        return false;
    }
    match conn.state {
        ConnState::Draining => {
            match conn.drain_discard() {
                Ok(Fill::Eof) | Err(_) => return false,
                Ok(_) => {}
            }
            now < conn.deadline
        }
        ConnState::Dispatched => true,
        ConnState::Reading => {
            if !conn.close_after_flush {
                // Cut and answer as many requests as possible without a
                // worker (errors, 503s); dispatch at most one.
                loop {
                    match conn.next_request(options.max_body_bytes) {
                        Ok(Some(request)) => {
                            let keep_req = request.keep_alive && conn.served + 1 < max_requests;
                            match queue.try_push(Job {
                                token,
                                request,
                                at: Instant::now(),
                            }) {
                                Push::Admitted => {
                                    *outstanding += 1;
                                    if conn.served > 0 {
                                        stats.reused.fetch_add(1, Ordering::Relaxed);
                                    }
                                    conn.pending_keep = keep_req;
                                    conn.state = ConnState::Dispatched;
                                    break;
                                }
                                Push::Saturated(_) => {
                                    // Backpressure must not cost the
                                    // client its warm connection: answer
                                    // inline and keep listening.
                                    stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                                    let mut response = Response::json(
                                        503,
                                        "{\"error\": \"server saturated: admission queue is full\", \"retry\": true}",
                                    );
                                    response.retry_after = Some(1);
                                    conn.stage(&response, keep_req);
                                    conn.served += 1;
                                    if keep_req {
                                        conn.deadline = now + options.read_timeout;
                                        continue;
                                    }
                                    conn.close_after_flush = true;
                                    break;
                                }
                                Push::Closed(_) => {
                                    let response = Response::json(
                                        503,
                                        "{\"error\": \"server is shutting down\", \"retry\": true}",
                                    );
                                    conn.stage(&response, false);
                                    conn.close_after_flush = true;
                                    break;
                                }
                            }
                        }
                        Ok(None) => {
                            if conn.peer_eof {
                                if conn.read_buf.is_empty() {
                                    // Clean end of a keep-alive session.
                                    if conn.write_buf.is_empty() {
                                        return false;
                                    }
                                    conn.close_after_flush = true;
                                } else {
                                    // EOF mid-request: typed 400.
                                    stage_error(conn, &HttpError::Truncated, stats);
                                }
                            } else if now >= conn.deadline {
                                if conn.read_buf.is_empty() {
                                    // Idle timeout: quiet close (the
                                    // standard keep-alive discipline).
                                    if conn.write_buf.is_empty() {
                                        return false;
                                    }
                                    conn.close_after_flush = true;
                                } else {
                                    // Trickling peer: the per-request
                                    // read deadline fired mid-request.
                                    let response = Response::json(
                                        400,
                                        "{\"error\": \"request read deadline exceeded\"}",
                                    );
                                    stats.count_status(response.status);
                                    conn.stage(&response, false);
                                    conn.close_after_flush = true;
                                }
                            } else if signal.is_triggered() && conn.write_buf.is_empty() {
                                // Shutting down and nothing pending
                                // here: close now rather than waiting
                                // out the read deadline.
                                return false;
                            }
                            break;
                        }
                        Err(error) => {
                            stage_error(conn, &error, stats);
                            break;
                        }
                    }
                }
            }
            if flush_or_drop(conn, stats).is_err() {
                return false;
            }
            if conn.close_after_flush
                && conn.write_buf.is_empty()
                && conn.state != ConnState::Draining
            {
                if conn.peer_eof {
                    // Peer already finished sending: no RST hazard,
                    // close outright.
                    return false;
                }
                conn.begin_drain(now);
            }
            true
        }
    }
}

/// Flushes staged bytes; on a dead socket counts the loss and errors.
fn flush_or_drop(conn: &mut Conn, stats: &ServeStats) -> Result<(), ()> {
    match conn.flush() {
        Ok(_) => Ok(()),
        Err(_) => {
            if !conn.write_buf.is_empty() {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Err(())
        }
    }
}

/// Stages the typed response for a request that never parsed and marks
/// the connection for close (HTTP framing is lost after a parse error).
fn stage_error(conn: &mut Conn, error: &HttpError, stats: &ServeStats) {
    let response = error_response(error);
    stats.count_status(response.status);
    conn.stage(&response, false);
    conn.close_after_flush = true;
}

/// The response for a request that never parsed.
fn error_response(error: &HttpError) -> Response {
    Response::json(
        error.status(),
        format!("{{\"error\": \"{}\"}}", escape_for_json(&error.to_string())),
    )
}

/// Minimal JSON string escaping for error messages (the full escaper
/// lives in `flashfuser-core`; this crate is dependency-free).
fn escape_for_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    /// Echoes method + path; `/die` asks for shutdown.
    struct Echo;

    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            if request.path == "/panic" {
                panic!("handler bug");
            }
            let mut response = Response::json(
                200,
                format!(
                    "{{\"method\": \"{}\", \"path\": \"{}\", \"body_len\": {}}}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            );
            if request.path == "/die" {
                response.shutdown = true;
            }
            response
        }
    }

    fn start_echo(options: ServeOptions) -> (Server, Arc<ServeStats>) {
        let stats = Arc::new(ServeStats::new());
        let server = Server::start(
            ("127.0.0.1", 0),
            Arc::new(Echo),
            Arc::clone(&stats),
            options,
        )
        .expect("bind ephemeral port");
        (server, stats)
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let r = client::post(addr, "/compile", b"hello").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            r.body_utf8(),
            "{\"method\": \"POST\", \"path\": \"/compile\", \"body_len\": 5}"
        );
        let r = client::get(addr, "/healthz").unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
        assert_eq!(stats.ok_responses.load(Ordering::Relaxed), 2);
        assert_eq!(stats.latency.count(), 2);
        // Post-shutdown connections are refused or reset, never served.
        assert!(client::get(addr, "/healthz").is_err());
    }

    #[test]
    fn handler_triggered_shutdown_unblocks_wait() {
        let (server, _stats) = start_echo(ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let r = client::get(addr, "/die").unwrap();
        assert_eq!(r.status, 200);
        // The control response was written *before* shutdown began.
        server.wait();
    }

    #[test]
    fn saturated_queue_answers_503_with_retry_hint() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            queue_depth: 1,
            debug_handle_delay: Some(Duration::from_millis(300)),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let mut statuses = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| scope.spawn(move || client::get(addr, "/x").unwrap()))
                .collect();
            for h in handles {
                statuses.push(h.join().unwrap());
            }
        });
        let rejected: Vec<_> = statuses.iter().filter(|r| r.status == 503).collect();
        let served = statuses.iter().filter(|r| r.status == 200).count();
        // With 1 worker holding a request for 300 ms and a queue of
        // depth 1, at most 1 + (1 per 300 ms drain) requests can be
        // admitted while the rest of the burst arrives within
        // milliseconds — so at least 3 of 6 see the 503, and every
        // request gets *some* definitive answer (nothing hangs).
        assert!(rejected.len() >= 3, "got {} rejections", rejected.len());
        assert!(served >= 1, "admitted requests must still be served");
        assert_eq!(served + rejected.len(), 6, "every request was answered");
        for r in &rejected {
            assert_eq!(r.headers.get("retry-after").map(String::as_str), Some("1"));
            assert!(r.body_utf8().contains("saturated"));
        }
        server.shutdown();
        assert_eq!(
            stats.rejected_busy.load(Ordering::Relaxed),
            rejected.len() as u64
        );
    }

    #[test]
    fn saturation_does_not_cost_a_keep_alive_client_its_connection() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            queue_depth: 1,
            debug_handle_delay: Some(Duration::from_millis(500)),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        // Two slow requests occupy worker + queue — staggered, so the
        // first is popped into the worker before the second arrives to
        // fill the queue slot (fired together on one core, both can
        // race the pop and bounce, leaving the queue empty).
        let hold_a = std::thread::spawn(move || client::get(addr, "/hold"));
        std::thread::sleep(Duration::from_millis(150));
        let hold_b = std::thread::spawn(move || client::get(addr, "/hold"));
        std::thread::sleep(Duration::from_millis(150));
        let mut conn = client::Connection::open(addr).unwrap();
        let rejected = conn.request("GET", "/burst", b"").unwrap();
        assert_eq!(rejected.status, 503, "worker + queue held -> inline 503");
        assert_eq!(
            rejected.headers.get("retry-after").map(String::as_str),
            Some("1"),
            "inline 503 carries the retry hint"
        );
        // Once the holds drain, the SAME connection gets served: the
        // 503 kept it usable.
        assert!(hold_a.join().unwrap().is_ok());
        assert!(hold_b.join().unwrap().is_ok());
        let served = conn.request("GET", "/burst", b"").unwrap();
        assert_eq!(served.status, 200, "connection never recovered after a 503");
        drop(conn);
        server.shutdown();
        assert!(stats.rejected_busy.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn handler_panic_costs_a_500_not_a_worker() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1, // the pool IS one worker; losing it would hang
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let r = client::get(addr, "/panic").unwrap();
        assert_eq!(r.status, 500);
        // The sole worker survived and keeps serving.
        let r = client::get(addr, "/ok").unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
        assert_eq!(stats.server_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn trickling_peer_is_bounded_by_the_total_read_deadline() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            read_timeout: Duration::from_millis(250),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        // One byte every 100 ms keeps any *per-read* timeout from
        // firing; only an overall deadline frees the connection slot.
        let mut slow = TcpStream::connect(addr).unwrap();
        for _ in 0..8 {
            use std::io::Write;
            if slow.write_all(b"G").is_err() {
                break; // server gave up on us — exactly the point
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        // The pool must be free despite `slow` never completing a
        // request.
        let ok = client::get(addr, "/after-trickle").unwrap();
        assert_eq!(ok.status, 200);
        drop(slow);
        server.shutdown();
        assert!(
            stats.client_errors.load(Ordering::Relaxed) >= 1,
            "the trickler was answered 400, not serviced forever"
        );
    }

    #[test]
    fn keep_alive_deadline_rearms_per_request_not_per_connection() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            read_timeout: Duration::from_millis(300),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let mut conn = client::Connection::open(addr).unwrap();
        // Two full requests spaced most of a deadline apart: each one
        // re-arms the clock, so the connection survives well past
        // 1 x read_timeout of total wall time.
        for _ in 0..3 {
            let r = conn.request("GET", "/ping", b"").unwrap();
            assert_eq!(r.status, 200);
            std::thread::sleep(Duration::from_millis(200));
        }
        // Now trickle the NEXT request: the per-request deadline must
        // fire even though the connection as a whole has been healthy
        // for ~600 ms already.
        conn.send_raw(b"GET /tric").unwrap();
        let r = conn.recv();
        // The server answers 400 (deadline mid-head) and closes.
        match r {
            Ok(resp) => assert_eq!(resp.status, 400),
            Err(_) => panic!("expected a 400 before close, got a dead socket"),
        }
        server.shutdown();
        assert!(stats.client_errors.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.ok_responses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn request_budget_closes_the_connection_politely() {
        let (server, _stats) = start_echo(ServeOptions {
            workers: 1,
            max_requests_per_conn: 3,
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let mut conn = client::Connection::open(addr).unwrap();
        for i in 0..3 {
            let r = conn.request("GET", "/budget", b"").unwrap();
            assert_eq!(r.status, 200);
            let is_last = i == 2;
            assert_eq!(
                r.headers.get("connection").map(String::as_str),
                Some(if is_last { "close" } else { "keep-alive" }),
                "request {i} negotiated the wrong connection header"
            );
        }
        // The budget is spent; the server has closed its side.
        assert!(conn.request("GET", "/past-budget", b"").is_err());
        server.shutdown();
    }

    #[test]
    fn unparseable_requests_get_typed_errors_not_hangs() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let raw = client::raw(addr, b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        assert_eq!(raw.status, 400);
        // A client that connects and sends nothing is quietly closed at
        // the deadline and its slot reclaimed.
        let idle = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        drop(idle);
        let ok = client::get(addr, "/after").unwrap();
        assert_eq!(ok.status, 200);
        server.shutdown();
        assert!(stats.client_errors.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn poisoned_rejectors_do_not_leak_their_slots() {
        // Silence the panic hook for the deliberately-poisoned rejector
        // threads (everything else still reports normally).
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() != Some("serve-reject") {
                prev(info);
            }
        }));
        let poisoned = MAX_REJECTORS + 2;
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            max_connections: 1,
            debug_reject_panics: poisoned,
            ..ServeOptions::default()
        });
        let addr = server.addr();
        // Occupy the only reactor slot so every further connection goes
        // through the rejector.
        let _parked = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // More panicking rejectors than MAX_REJECTORS, sequentially:
        // without the drop guard each one would leak a slot and the
        // valve would go permanently silent after 64.
        for i in 0..poisoned {
            let r = client::get(addr, "/flood");
            assert!(r.is_err(), "poisoned rejector {i} still answered: {r:?}");
        }
        // The guard returned every slot: the next rejection is a real,
        // polite 503 again.
        let deadline = Instant::now() + Duration::from_secs(2);
        while stats.rejectors.load(Ordering::SeqCst) != 0 {
            assert!(Instant::now() < deadline, "rejector gauge never settled");
            std::thread::sleep(Duration::from_millis(10));
        }
        let r = client::get(addr, "/after-poison").unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.headers.get("retry-after").map(String::as_str), Some("1"));
        assert_eq!(
            stats.rejected_busy.load(Ordering::Relaxed),
            poisoned + 1,
            "every over-cap connection was counted"
        );
        server.shutdown();
    }
}
