//! The serving shell: one acceptor, a bounded queue, a fixed worker
//! pool, and a graceful-shutdown protocol.
//!
//! The shape is deliberately boring (it is the thread-per-core shape
//! every pre-async serving system used, and it is easy to reason
//! about under load):
//!
//! ```text
//!   accept() ──try_push──▶ [bounded queue] ──pop──▶ worker × N
//!      │ full?                                        │
//!      └──▶ 503 + Retry-After                         └──▶ Handler
//! ```
//!
//! * The **acceptor** never does request work; it only admits or
//!   rejects, so saturation answers in microseconds even when every
//!   worker is busy searching.
//! * **Workers** own a connection end to end: read, handle, write,
//!   close. `Connection: close` per request keeps the state machine
//!   trivial; the compilation payloads dwarf connection setup.
//! * **Shutdown** is a control signal (a [`Response::shutdown`] flag
//!   set by the handler, or [`Server::shutdown`] called directly):
//!   admissions stop, queued requests drain, workers exit, the
//!   acceptor is woken by a loopback connect so nothing blocks forever.

use crate::http::{self, HttpError, Request, Response};
use crate::queue::{Push, Queue};
use crate::stats::ServeStats;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The application side of the server: maps one parsed request to one
/// response. Implementations must be callable from many worker threads
/// at once.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request) -> Response;
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub workers: usize,
    /// Admission-queue depth (`0` is clamped to 1). Bounds worst-case
    /// queueing delay; beyond it the server answers 503.
    pub queue_depth: usize,
    /// Total budget for reading one request (head + body). Enforced as
    /// a deadline across every read, so a peer trickling one byte per
    /// second cannot hold a worker hostage any longer than a stalled
    /// one.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Request-body cap in bytes; larger payloads answer 413.
    pub max_body_bytes: usize,
    /// Test-only: hold each request in the worker for this long before
    /// handling, to make saturation deterministic in integration tests.
    pub debug_handle_delay: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            debug_handle_delay: None,
        }
    }
}

/// A connection admitted by the acceptor, stamped for queue-wait
/// accounting.
struct Admitted {
    stream: TcpStream,
    at: Instant,
}

/// Coordinates the one-shot transition into shutdown.
struct ShutdownSignal {
    flag: AtomicBool,
    queue: Arc<Queue<Admitted>>,
    addr: SocketAddr,
}

impl ShutdownSignal {
    /// Begins shutdown exactly once: close admissions, wake the
    /// acceptor with a loopback connect.
    fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // The acceptor may be blocked in accept(); a throwaway connect
        // wakes it so it can observe the flag and exit. A wildcard bind
        // address is not connectable — rewrite it to the loopback of
        // the same family — and a transiently failing connect (fd
        // exhaustion under the very flood that prompted shutdown) gets
        // a few retries so join() cannot hang on a sleeping acceptor.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        for attempt in 0..10 {
            match TcpStream::connect_timeout(&wake, Duration::from_millis(200)) {
                Ok(_) => break,
                Err(_) if attempt < 9 => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => {} // acceptor will still exit on its next accept
            }
        }
    }

    fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or let the handler trigger it) and then join
/// via [`Server::shutdown`]/[`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    signal: Arc<ShutdownSignal>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts the
    /// acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the listener cannot bind.
    pub fn start(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn Handler>,
        stats: Arc<ServeStats>,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(Queue::new(options.queue_depth));
        let signal = Arc::new(ShutdownSignal {
            flag: AtomicBool::new(false),
            queue: Arc::clone(&queue),
            addr,
        });
        let workers_n = if options.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            options.workers
        };
        // If any later spawn fails, already-spawned workers must not be
        // leaked blocked in pop() forever: close the queue, join them,
        // then surface the error.
        let cleanup = |workers: Vec<JoinHandle<()>>, e: io::Error| -> io::Error {
            queue.close();
            for worker in workers {
                let _ = worker.join();
            }
            e
        };
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let stats = Arc::clone(&stats);
            let signal = Arc::clone(&signal);
            let options = options.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&queue, &*handler, &stats, &signal, &options));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => return Err(cleanup(workers, e)),
            }
        }
        let acceptor = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let signal = Arc::clone(&signal);
            let max_body_bytes = options.max_body_bytes;
            let spawned = std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &queue, stats, &signal, max_body_bytes));
            match spawned {
                Ok(handle) => handle,
                Err(e) => return Err(cleanup(workers, e)),
            }
        };
        Ok(Server {
            addr,
            signal,
            acceptor,
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once shutdown has been triggered (by any path).
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Triggers graceful shutdown and joins every thread: admissions
    /// stop, queued requests finish, workers exit.
    pub fn shutdown(self) {
        self.signal.trigger();
        self.join();
    }

    /// Blocks until the server shuts down through some other path (the
    /// `/admin/shutdown` control endpoint), then joins every thread.
    pub fn wait(self) {
        self.join();
    }

    fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    queue: &Queue<Admitted>,
    stats: Arc<ServeStats>,
    signal: &ShutdownSignal,
    max_body_bytes: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if signal.is_triggered() {
                    return;
                }
                // Transient failure (aborted connection) or resource
                // exhaustion (EMFILE under a flood): back off briefly
                // instead of spinning a core that the workers need to
                // drain the very connections holding the descriptors.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if signal.is_triggered() {
            // The wake-up connect (or a late client); either way,
            // admissions are over.
            drop(stream);
            return;
        }
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        match queue.try_push(Admitted {
            stream,
            at: Instant::now(),
        }) {
            Push::Admitted => {}
            Push::Saturated(admitted) | Push::Closed(admitted) => {
                stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                reject_busy(admitted.stream, Arc::clone(&stats), max_body_bytes);
            }
        }
    }
}

/// Concurrent rejection threads beyond which the server stops writing
/// polite 503s and just drops the connection (an extreme-flood valve;
/// a dropped connection is still backpressure).
const MAX_REJECTORS: u64 = 64;

/// Answers 503 + `Retry-After` without blocking the acceptor: the
/// request must be *read* before the response is written and the socket
/// closed (closing with unread bytes makes TCP send RST and may discard
/// the response), and reading waits on the peer — so each rejection
/// runs on a short-lived thread with tight timeouts.
fn reject_busy(stream: TcpStream, stats: Arc<ServeStats>, max_body_bytes: usize) {
    if stats.rejectors.fetch_add(1, Ordering::SeqCst) >= MAX_REJECTORS {
        stats.rejectors.fetch_sub(1, Ordering::SeqCst);
        return; // flood valve: drop without ceremony
    }
    let on_spawn_failure = Arc::clone(&stats);
    let spawned = std::thread::Builder::new()
        .name("serve-reject".to_string())
        .spawn(move || {
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
            // Drain the request (under the server's own body cap) so
            // the close after the 503 is a clean FIN, not an RST racing
            // the response off the wire.
            let deadline = Instant::now() + Duration::from_millis(500);
            let fully_read = http::read_request(
                &mut DeadlineStream {
                    stream: &stream,
                    deadline,
                },
                max_body_bytes,
            )
            .is_ok();
            let mut response = Response::json(
                503,
                "{\"error\": \"server saturated: admission queue is full\", \"retry\": true}",
            );
            response.retry_after = Some(1);
            let _ = http::write_response(&mut stream, &response);
            if !fully_read {
                // The request errored mid-read (oversized body, bad
                // head): same RST hazard as the worker's error path —
                // half-close and keep draining briefly so the 503
                // survives.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut reader = DeadlineStream {
                    stream: &stream,
                    deadline,
                };
                let mut sink = [0u8; 4096];
                while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
            }
            stats.rejectors.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // The closure never ran, so its decrement never will either.
        on_spawn_failure.rejectors.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A read view of a `TcpStream` that enforces one overall deadline:
/// before every read the socket timeout is re-armed to the time
/// remaining, so the total time a peer can hold the reader — stalled
/// *or* trickling one byte per timeout — is bounded by the deadline.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        (&mut &*self.stream).read(buf)
    }
}

fn worker_loop(
    queue: &Queue<Admitted>,
    handler: &dyn Handler,
    stats: &ServeStats,
    signal: &ShutdownSignal,
    options: &ServeOptions,
) {
    while let Some(admitted) = queue.pop() {
        stats
            .queue_wait
            .record(admitted.at.elapsed().as_micros() as u64);
        stats.in_flight.fetch_add(1, Ordering::Relaxed);
        serve_one(admitted, handler, stats, signal, options);
        stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn serve_one(
    admitted: Admitted,
    handler: &dyn Handler,
    stats: &ServeStats,
    signal: &ShutdownSignal,
    options: &ServeOptions,
) {
    let Admitted { mut stream, at } = admitted;
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    if let Some(delay) = options.debug_handle_delay {
        std::thread::sleep(delay);
    }
    let deadline = Instant::now() + options.read_timeout;
    let read_outcome = http::read_request(
        &mut DeadlineStream {
            stream: &stream,
            deadline,
        },
        options.max_body_bytes,
    );
    let mut request_fully_read = true;
    let response = match read_outcome {
        // A panicking handler must cost one 500, not one worker thread
        // (the pool is fixed; a shrunk pool is a silent capacity leak).
        Ok(request) => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler.handle(&request)
            })) {
                Ok(response) => response,
                Err(_) => Response::json(500, "{\"error\": \"internal error handling request\"}"),
            }
        }
        Err(error) => {
            request_fully_read = false;
            error_response(&error)
        }
    };
    match http::write_response(&mut stream, &response) {
        Ok(()) => {
            stats.count_status(response.status);
            stats.latency.record(at.elapsed().as_micros() as u64);
        }
        Err(_) => {
            stats.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
    if !request_fully_read {
        // The peer may still be sending the request we refused (a 413
        // body, a malformed stream): closing with unread bytes makes
        // TCP send RST, which can destroy the queued error response —
        // the same hazard reject_busy drains against. Half-close our
        // side so the peer sees response + EOF promptly, then drain
        // briefly until the peer finishes or the budget runs out.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let drain_deadline = Instant::now() + Duration::from_millis(250);
        let mut reader = DeadlineStream {
            stream: &stream,
            deadline: drain_deadline,
        };
        let mut sink = [0u8; 4096];
        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
    }
    if response.shutdown {
        signal.trigger();
    }
}

/// The response for a request that never parsed.
fn error_response(error: &HttpError) -> Response {
    Response::json(
        error.status(),
        format!("{{\"error\": \"{}\"}}", escape_for_json(&error.to_string())),
    )
}

/// Minimal JSON string escaping for error messages (the full escaper
/// lives in `flashfuser-core`; this crate is dependency-free).
fn escape_for_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    /// Echoes method + path; `/die` asks for shutdown.
    struct Echo;

    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            if request.path == "/panic" {
                panic!("handler bug");
            }
            let mut response = Response::json(
                200,
                format!(
                    "{{\"method\": \"{}\", \"path\": \"{}\", \"body_len\": {}}}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            );
            if request.path == "/die" {
                response.shutdown = true;
            }
            response
        }
    }

    fn start_echo(options: ServeOptions) -> (Server, Arc<ServeStats>) {
        let stats = Arc::new(ServeStats::new());
        let server = Server::start(
            ("127.0.0.1", 0),
            Arc::new(Echo),
            Arc::clone(&stats),
            options,
        )
        .expect("bind ephemeral port");
        (server, stats)
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let r = client::post(addr, "/compile", b"hello").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(
            r.body_utf8(),
            "{\"method\": \"POST\", \"path\": \"/compile\", \"body_len\": 5}"
        );
        let r = client::get(addr, "/healthz").unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
        assert_eq!(stats.ok_responses.load(Ordering::Relaxed), 2);
        assert_eq!(stats.latency.count(), 2);
        // Post-shutdown connections are refused or reset, never served.
        assert!(client::get(addr, "/healthz").is_err());
    }

    #[test]
    fn handler_triggered_shutdown_unblocks_wait() {
        let (server, _stats) = start_echo(ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let r = client::get(addr, "/die").unwrap();
        assert_eq!(r.status, 200);
        // The control response was written *before* shutdown began.
        server.wait();
    }

    #[test]
    fn saturated_queue_answers_503_with_retry_hint() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            queue_depth: 1,
            debug_handle_delay: Some(Duration::from_millis(300)),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let mut statuses = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| scope.spawn(move || client::get(addr, "/x").unwrap()))
                .collect();
            for h in handles {
                statuses.push(h.join().unwrap());
            }
        });
        let rejected: Vec<_> = statuses.iter().filter(|r| r.status == 503).collect();
        let served = statuses.iter().filter(|r| r.status == 200).count();
        // With 1 worker holding a request for 300 ms and a queue of
        // depth 1, at most 1 + (1 per 300 ms drain) requests can be
        // admitted while the rest of the burst arrives within
        // milliseconds — so at least 3 of 6 see the 503, and every
        // request gets *some* definitive answer (nothing hangs).
        assert!(rejected.len() >= 3, "got {} rejections", rejected.len());
        assert!(served >= 1, "admitted requests must still be served");
        assert_eq!(served + rejected.len(), 6, "every request was answered");
        for r in &rejected {
            assert_eq!(r.headers.get("retry-after").map(String::as_str), Some("1"));
            assert!(r.body_utf8().contains("saturated"));
        }
        server.shutdown();
        assert_eq!(
            stats.rejected_busy.load(Ordering::Relaxed),
            rejected.len() as u64
        );
    }

    #[test]
    fn handler_panic_costs_a_500_not_a_worker() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1, // the pool IS one worker; losing it would hang
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let r = client::get(addr, "/panic").unwrap();
        assert_eq!(r.status, 500);
        // The sole worker survived and keeps serving.
        let r = client::get(addr, "/ok").unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
        assert_eq!(stats.server_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn trickling_peer_is_bounded_by_the_total_read_deadline() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            read_timeout: Duration::from_millis(250),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        // One byte every 100 ms keeps any *per-read* timeout from
        // firing; only an overall deadline frees the worker.
        let mut slow = TcpStream::connect(addr).unwrap();
        for _ in 0..8 {
            use std::io::Write;
            if slow.write_all(b"G").is_err() {
                break; // server gave up on us — exactly the point
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        // The sole worker must be free again despite `slow` never
        // completing a request.
        let ok = client::get(addr, "/after-trickle").unwrap();
        assert_eq!(ok.status, 200);
        drop(slow);
        server.shutdown();
        assert!(
            stats.client_errors.load(Ordering::Relaxed) >= 1,
            "the trickler was answered 400, not serviced forever"
        );
    }

    #[test]
    fn unparseable_requests_get_typed_errors_not_hangs() {
        let (server, stats) = start_echo(ServeOptions {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            ..ServeOptions::default()
        });
        let addr = server.addr();
        let raw = client::raw(addr, b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        assert_eq!(raw.status, 400);
        // A client that connects and sends nothing times out server-side
        // and the worker moves on.
        let idle = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        drop(idle);
        let ok = client::get(addr, "/after").unwrap();
        assert_eq!(ok.status, 200);
        server.shutdown();
        assert!(stats.client_errors.load(Ordering::Relaxed) >= 1);
    }
}
