//! Per-connection state for the keep-alive reactor.
//!
//! Each accepted socket becomes a [`Conn`]: a nonblocking stream plus
//! the two buffers and the little state machine the reactor advances —
//!
//! ```text
//!   Reading ──complete request──▶ Dispatched ──completion──▶ Reading
//!      │                              │                         │
//!      │ parse error / deadline       │ keep-alive exhausted    │
//!      ▼                              ▼                         │
//!   Draining ◀─────────────────── (close after flush) ◀─────────┘
//! ```
//!
//! * **Reading**: accumulating bytes until [`Conn::next_request`] can
//!   cut a complete request off the front of the buffer. Pipelined
//!   surplus stays buffered for the next cut. A per-request deadline
//!   (re-armed every time a response completes, *not* once per
//!   connection) bounds how long a trickling peer can sit here.
//! * **Dispatched**: exactly one request is in the admission queue or a
//!   worker. At most one — so responses never reorder under
//!   pipelining, and a connection can never occupy more than one queue
//!   slot. The socket is still read (into the bounded buffer) so peer
//!   disconnects surface early.
//! * **Draining**: the closing handshake. The response (or error) has
//!   been staged and the write side half-closed; reads are discarded
//!   until the peer's EOF or a short deadline, because closing a socket
//!   with unread bytes makes TCP send RST, which can destroy the very
//!   response sitting in the kernel's send buffer.

use crate::http::{self, Request, Response};
use crate::reactor::Interest;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long a [`ConnState::Draining`] connection waits for the peer's
/// EOF before giving up and closing anyway.
pub const DRAIN_BUDGET: Duration = Duration::from_millis(250);

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (more of) the next request.
    Reading,
    /// One request handed to the admission queue; awaiting completion.
    Dispatched,
    /// Write side closed; discarding reads until EOF or the drain
    /// deadline.
    Draining,
}

/// What a buffer-filling read pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// New bytes arrived (there may be more; the buffer hit its cap or
    /// the socket ran dry).
    Bytes,
    /// Nothing to read right now.
    Blocked,
    /// The peer closed its write side (EOF).
    Eof,
}

/// One live connection owned by the reactor.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (may hold several pipelined requests).
    pub read_buf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the kernel.
    pub write_buf: Vec<u8>,
    /// State-machine position.
    pub state: ConnState,
    /// When the current state times out (read deadline in `Reading`,
    /// drain cutoff in `Draining`; ignored while `Dispatched`).
    pub deadline: Instant,
    /// Responses completed on this connection.
    pub served: u64,
    /// The dispatched request's negotiated keep-alive (already
    /// intersected with the per-connection request budget).
    pub pending_keep: bool,
    /// Set once the peer sent EOF: no further requests can arrive, so
    /// the connection closes once the buffered ones are answered.
    pub peer_eof: bool,
    /// Set when the connection must close once `write_buf` flushes.
    pub close_after_flush: bool,
}

impl Conn {
    /// Adopts an accepted stream: makes it nonblocking, disables Nagle
    /// (pipelined responses are small back-to-back writes; leaving
    /// Nagle on stalls each behind the peer's delayed ACK), and arms
    /// the first request deadline.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the socket cannot be made nonblocking.
    pub fn new(stream: TcpStream, read_timeout: Duration) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            state: ConnState::Reading,
            deadline: Instant::now() + read_timeout,
            served: 0,
            pending_keep: false,
            peer_eof: false,
            close_after_flush: false,
        })
    }

    /// The fd for the reactor's poll set.
    pub fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// What this connection wants the poller to watch, given the
    /// read-buffer high-water mark (pipelining backpressure: a full
    /// buffer stops reading until responses drain it).
    pub fn interest(&self, high_water: usize) -> Interest {
        let read = match self.state {
            ConnState::Draining => true,
            _ => !self.peer_eof && self.read_buf.len() < high_water,
        };
        Interest {
            read,
            write: !self.write_buf.is_empty(),
        }
    }

    /// Pulls whatever the socket has into `read_buf`, up to
    /// `high_water`.
    ///
    /// # Errors
    ///
    /// A socket error means the connection is dead; the caller drops it.
    pub fn fill(&mut self, high_water: usize) -> io::Result<Fill> {
        let mut chunk = [0u8; 16 * 1024];
        let mut got_bytes = false;
        loop {
            if self.read_buf.len() >= high_water {
                return Ok(if got_bytes {
                    Fill::Bytes
                } else {
                    Fill::Blocked
                });
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return Ok(Fill::Eof);
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    got_bytes = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(if got_bytes {
                        Fill::Bytes
                    } else {
                        Fill::Blocked
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads and discards (the `Draining` close handshake).
    ///
    /// # Errors
    ///
    /// A socket error here just means the peer is gone; callers close.
    pub fn drain_discard(&mut self) -> io::Result<Fill> {
        let mut sink = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Fill::Blocked),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Cuts the next complete request off the front of `read_buf`.
    ///
    /// # Errors
    ///
    /// Propagates the parse error; the caller answers it and closes.
    pub fn next_request(
        &mut self,
        max_body_bytes: usize,
    ) -> Result<Option<Request>, http::HttpError> {
        match http::parse_request(&self.read_buf, max_body_bytes)? {
            Some((request, consumed)) => {
                self.read_buf.drain(..consumed);
                Ok(Some(request))
            }
            None => Ok(None),
        }
    }

    /// Stages an encoded response behind any bytes already queued.
    pub fn stage(&mut self, response: &Response, keep_alive: bool) {
        self.write_buf
            .extend_from_slice(&http::encode_response(response, keep_alive));
    }

    /// Pushes staged bytes into the socket. Returns `true` when the
    /// buffer is empty.
    ///
    /// # Errors
    ///
    /// A write error (peer reset) means the connection is dead.
    pub fn flush(&mut self) -> io::Result<bool> {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Enters the `Draining` close handshake: half-close the write side
    /// so the peer sees response + EOF, then discard reads until their
    /// EOF (or the budget) lets us close without an RST.
    pub fn begin_drain(&mut self, now: Instant) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        self.state = ConnState::Draining;
        self.deadline = now + DRAIN_BUDGET;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (peer, Conn::new(accepted, Duration::from_secs(5)).unwrap())
    }

    #[test]
    fn fill_parse_stage_flush_round_trip() {
        let (mut peer, mut conn) = pair();
        peer.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        // Wait for the bytes to land (loopback, but still async).
        let deadline = Instant::now() + Duration::from_secs(2);
        while conn.read_buf.len() < 38 {
            assert!(Instant::now() < deadline, "bytes never arrived");
            let _ = conn.fill(64 * 1024).unwrap();
        }
        // Two pipelined requests cut in order.
        let a = conn.next_request(1024).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        let b = conn.next_request(1024).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert!(conn.next_request(1024).unwrap().is_none());
        assert!(conn.read_buf.is_empty());
        // Stage two responses and flush them to the peer.
        conn.stage(&Response::json(200, "{\"r\": \"a\"}"), true);
        conn.stage(&Response::json(200, "{\"r\": \"b\"}"), false);
        assert!(conn.flush().unwrap());
        peer.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut got = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match peer.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
            if got.ends_with(b"{\"r\": \"b\"}") {
                break;
            }
        }
        let text = String::from_utf8(got).unwrap();
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"r\": \"b\"}"));
    }

    #[test]
    fn high_water_caps_the_read_buffer() {
        let (mut peer, mut conn) = pair();
        peer.write_all(&[b'x'; 4096]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let _ = conn.fill(100).unwrap();
            if conn.read_buf.len() >= 100 {
                break;
            }
            assert!(Instant::now() < deadline, "bytes never arrived");
        }
        // The buffer stops at the cap (one chunk may overshoot it, but
        // never by more than a chunk) and interest drops read.
        assert!(conn.read_buf.len() <= 100 + 16 * 1024);
        assert!(!conn.interest(100).read);
    }

    #[test]
    fn peer_eof_is_sticky_and_drops_read_interest() {
        let (peer, mut conn) = pair();
        drop(peer);
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if conn.fill(1024).unwrap() == Fill::Eof {
                break;
            }
            assert!(Instant::now() < deadline, "EOF never observed");
        }
        assert!(conn.peer_eof);
        assert!(!conn.interest(1024).read);
        assert!(!conn.interest(1024).write);
    }
}
