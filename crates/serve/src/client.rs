//! A minimal blocking HTTP client for tests, benchmarks and smoke
//! scripts.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` discipline: connect, write, read to EOF, parse.
//! This is intentionally *not* a general client — it exists so the
//! load generator and the integration tests need no external tooling
//! (no `curl` on the verification path).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8, panicking on invalid bytes (server responses
    /// are always JSON text; tests want the loud failure).
    pub fn body_utf8(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// Issues `GET path`.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, b"")
}

/// Issues `POST path` with a JSON body.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

/// Issues one request and reads the response.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    head.extend_from_slice(body);
    raw(addr, &head)
}

/// Writes `bytes` verbatim and parses whatever comes back — for tests
/// that deliberately send malformed requests.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    // A server that rejects early (413, 503) may answer and close while
    // we are still writing; the write error is only fatal if no
    // response can be read either.
    let write_outcome = stream.write_all(bytes);
    let mut response = Vec::new();
    let read_outcome = stream.read_to_end(&mut response);
    match parse_response(&response) {
        Some(parsed) => Ok(parsed),
        None => {
            write_outcome?;
            read_outcome?;
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unparseable HTTP response",
            ))
        }
    }
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nok";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.headers.get("retry-after").map(String::as_str), Some("1"));
        assert_eq!(r.body_utf8(), "ok");
    }

    #[test]
    fn garbage_is_none_not_panic() {
        assert!(parse_response(b"").is_none());
        assert!(parse_response(b"not http at all\r\n\r\n").is_none());
    }
}
