//! A minimal blocking HTTP client for tests, benchmarks and smoke
//! scripts.
//!
//! Two shapes, matching the server's two connection disciplines:
//!
//! * The free functions ([`get`], [`post`], [`request`], [`raw`]) are
//!   one-shot — connect, send `Connection: close`, read to EOF, parse.
//! * [`Connection`] keeps one socket open across requests (the
//!   keep-alive path): responses are framed by `Content-Length` rather
//!   than EOF, and [`Connection::pipeline`] writes a whole batch before
//!   reading any response, which is what the reuse benchmark measures.
//!
//! This is intentionally *not* a general client — it exists so the
//! load generator and the integration tests need no external tooling
//! (no `curl` on the verification path).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8, panicking on invalid bytes (server responses
    /// are always JSON text; tests want the loud failure).
    pub fn body_utf8(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// Issues `GET path`.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, b"")
}

/// Issues `POST path` with a JSON body.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

/// Issues one request and reads the response.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    head.extend_from_slice(body);
    raw(addr, &head)
}

/// Writes `bytes` verbatim and parses whatever comes back — for tests
/// that deliberately send malformed requests.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` when the response
/// cannot be parsed.
pub fn raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    // A server that rejects early (413, 503) may answer and close while
    // we are still writing; the write error is only fatal if no
    // response can be read either.
    let write_outcome = stream.write_all(bytes);
    let mut response = Vec::new();
    let read_outcome = stream.read_to_end(&mut response);
    match parse_response(&response) {
        Some(parsed) => Ok(parsed),
        None => {
            write_outcome?;
            read_outcome?;
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unparseable HTTP response",
            ))
        }
    }
}

/// A persistent keep-alive connection.
///
/// Unlike the one-shot helpers, responses are cut out of the stream by
/// their `Content-Length`, so the same socket carries request after
/// request — including pipelined batches.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a framed response.
    buf: Vec<u8>,
}

impl Connection {
    /// Connects with the same timeouts as the one-shot helpers.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect/configure error.
    pub fn open(addr: SocketAddr) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request *without* reading its response (the pipelining
    /// half of the protocol). No `Connection: close` — the point is
    /// reuse.
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
        let mut bytes = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.stream.peer_addr()?,
            body.len()
        )
        .into_bytes();
        bytes.extend_from_slice(body);
        self.stream.write_all(&bytes)
    }

    /// Writes `bytes` verbatim — for tests that trickle or send
    /// malformed requests over a live keep-alive connection.
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads the next `Content-Length`-framed response off the stream.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or `InvalidData`/
    /// `UnexpectedEof` when the stream ends mid-response.
    pub fn recv(&mut self) -> io::Result<ClientResponse> {
        loop {
            if let Some((response, consumed)) = parse_framed(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(response);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    /// One request/response round trip on the persistent socket.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or `InvalidData` when the
    /// response cannot be parsed.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.send(method, path, body)?;
        self.recv()
    }

    /// Writes every request in `batch` back-to-back, then reads every
    /// response in order — HTTP/1.1 pipelining, the maximum-reuse shape.
    ///
    /// # Errors
    ///
    /// Returns the first I/O or framing error encountered.
    pub fn pipeline(&mut self, batch: &[(&str, &str, &[u8])]) -> io::Result<Vec<ClientResponse>> {
        for &(method, path, body) in batch {
            self.send(method, path, body)?;
        }
        let mut responses = Vec::with_capacity(batch.len());
        for _ in batch {
            responses.push(self.recv()?);
        }
        Ok(responses)
    }
}

/// Cuts one complete `Content-Length`-framed response off the front of
/// `buf`, returning it with the number of bytes it occupied. `Ok(None)`
/// means "incomplete, read more".
///
/// # Errors
///
/// `InvalidData` when the head is present but unparseable or carries no
/// usable `Content-Length` (this client never sends requests whose
/// responses could be EOF-framed on a keep-alive socket).
fn parse_framed(buf: &[u8]) -> io::Result<Option<(ClientResponse, usize)>> {
    let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head_end = pos + 4;
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| invalid("non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let length: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| invalid("keep-alive response without Content-Length"))?;
    let total = head_end + length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        ClientResponse {
            status,
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    )))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\nok";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.headers.get("retry-after").map(String::as_str), Some("1"));
        assert_eq!(r.body_utf8(), "ok");
    }

    #[test]
    fn garbage_is_none_not_panic() {
        assert!(parse_response(b"").is_none());
        assert!(parse_response(b"not http at all\r\n\r\n").is_none());
    }

    #[test]
    fn framed_parser_waits_for_the_full_body_and_keeps_surplus() {
        let one = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        let two = [&one[..], &one[..]].concat();
        // Every strict prefix of one response is "incomplete", never an
        // error and never a short body.
        for cut in 0..one.len() {
            assert!(parse_framed(&one[..cut]).unwrap().is_none(), "cut {cut}");
        }
        let (r, consumed) = parse_framed(&two).unwrap().unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body_utf8(), "body");
        // Exactly one response consumed; the pipelined second stays.
        assert_eq!(consumed, one.len());
        let (r2, _) = parse_framed(&two[consumed..]).unwrap().unwrap();
        assert_eq!(r2.body_utf8(), "body");
    }

    #[test]
    fn framed_parser_rejects_unframeable_responses() {
        assert!(parse_framed(b"HTTP/1.1 200 OK\r\n\r\n").is_err());
        assert!(parse_framed(b"garbage\r\n\r\n").is_err());
    }
}
