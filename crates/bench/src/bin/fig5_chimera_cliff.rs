//! Fig. 5: Chimera relative performance vs PyTorch, and the 227 KB SMEM
//! capacity cliff.

use flashfuser_baselines::{Baseline, ChimeraPolicy, PyTorchPolicy};
use flashfuser_bench::h100;
use flashfuser_graph::ChainSpec;
use flashfuser_tensor::Activation;

fn main() {
    let params = h100();
    let chimera = ChimeraPolicy::new(params.clone());
    let torch = PyTorchPolicy::new(params.clone());
    // The paper's five two-GEMM workloads (M = 128).
    let rows = [
        ("ViT-Base/14", 128usize, 256usize, 64usize, 64usize),
        ("Mixer-Small", 128, 256, 64, 64),
        ("Bert-Small", 128, 512, 64, 64),
        ("OPT1_3B", 128, 8192, 2048, 2048),
        ("GPT6_7B", 128, 16384, 4096, 4096),
    ];
    println!("== Fig. 5: Chimera vs torch and the SMEM capacity cliff ==");
    println!(
        "{:<14}{:>14}{:>16}{:>12}",
        "workload", "rel. perf", "intermediate KB", "status"
    );
    println!(
        "{:<14}{:>14}{:>16}{:>12}",
        "", "(torch=1)", "(limit 227)", ""
    );
    for (name, m, n, k, l) in rows {
        let chain = ChainSpec::standard_ffn(m, n, k, l, Activation::Relu).named(name);
        let c = chimera.run(&chain);
        let t = torch.run(&chain);
        println!(
            "{name:<14}{:>14.2}{:>16}{:>12}",
            t.seconds / c.seconds,
            chain.dims().intermediate_bytes_f16() / 1024,
            if c.fused { "fused" } else { "FAIL" }
        );
    }
}
