//! Fig. 10: subgraph performance — (a) GEMM chains, (b) conv chains,
//! (c) gated FFNs — every system normalised to PyTorch.

use flashfuser_baselines::suite;
use flashfuser_bench::{h100, print_speedup_table, run_matrix};
use flashfuser_workloads::{conv_chains, gated_ffn_chains, gemm_chains};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let params = h100();
    let systems = suite(&params);
    let names: Vec<&str> = systems.iter().map(|s| s.name()).collect();
    let torch_idx = names.iter().position(|n| *n == "PyTorch").unwrap();
    let mut groups = vec![];
    if which == "gemm" || which == "all" {
        groups.push(("Fig. 10(a): GEMM chains", gemm_chains()));
    }
    if which == "conv" || which == "all" {
        groups.push(("Fig. 10(b): conv chains", conv_chains()));
    }
    if which == "gated" || which == "all" {
        groups.push(("Fig. 10(c): gated FFNs", gated_ffn_chains()));
    }
    for (title, workloads) in groups {
        let results = run_matrix(&workloads, &systems);
        print_speedup_table(title, &workloads, &names, &results, torch_idx);
        println!();
    }
}
