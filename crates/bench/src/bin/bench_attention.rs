//! Attention-fusion traffic record and `BENCH_attention.json` emitter —
//! also the `attention-smoke` step of `scripts/verify.sh`.
//!
//! The acceptance bar of the attention tentpole (ISSUE 8): on the H100
//! builtin *and* the committed SRAM-rich `machines/tensix_like.json`
//! descriptor, the fused `Q×K^T → softmax → A×V` plan must move
//! strictly fewer priced global bytes than the per-op unfused fallback
//! (which round-trips the score matrix through global memory around a
//! standalone softmax kernel: 3 reads + 1 write of `C` on top of the
//! per-GEMM traffic). Every probe is also validated end to end against
//! the per-op interpreter oracle through the whole-graph pipeline, so
//! the byte win is attached to a numerically correct plan, not a cost
//! model artifact.
//!
//! Gates (non-zero exit on violation):
//!
//! * every probe finds a feasible fused attention plan on both
//!   machines (`plans_feasible`);
//! * every stitched execution matches the oracle (`oracle_passed`);
//! * every fused plan's priced global bytes are strictly lower than
//!   the unfused fallback's (`bytes_strictly_lower`).

use flashfuser::prelude::*;
use flashfuser_bench::quick_mode;
use flashfuser_core::{decode_machine, MachineDescriptor};
use flashfuser_graph::OpKind;
use flashfuser_tensor::KernelKind;

/// One probe's outcome row.
struct Row {
    machine: String,
    chain: String,
    fused_bytes: u64,
    unfused_bytes: u64,
    speedup: f64,
    feasible: bool,
    oracle_ok: bool,
}

/// Loads the committed Tensix-like descriptor, tolerating both a
/// workspace-root and a crate-dir working directory.
fn tensix_like() -> MachineDescriptor {
    let candidates = [
        "machines/tensix_like.json",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../machines/tensix_like.json"
        ),
    ];
    for path in candidates {
        if let Ok(text) = std::fs::read_to_string(path) {
            return decode_machine(&text).expect("machines/tensix_like.json decodes");
        }
    }
    panic!("machines/tensix_like.json not found from {candidates:?}");
}

fn probes(quick: bool) -> Vec<ChainSpec> {
    // Zoo-shaped windows: m = n = sequence length, k = l = head/hidden
    // extent (how `lower_layer` emits them, scaled or plain).
    let mut probes = vec![
        ChainSpec::attention(128, 128, 64, 64, true),
        ChainSpec::attention(256, 256, 64, 64, false),
    ];
    if !quick {
        probes.push(ChainSpec::attention(384, 384, 64, 64, false));
        probes.push(ChainSpec::attention(512, 512, 64, 64, true));
    }
    probes
}

fn main() {
    let quick = quick_mode();
    let machines = [MachineDescriptor::h100_sxm(), tensix_like()];
    let probes = probes(quick);
    println!("== attention fusion traffic (fused vs per-op unfused) ==");
    println!(
        "{:<24} {:<28} {:>14} {:>14} {:>8} {:>9} {:>8}",
        "machine", "chain", "fused_bytes", "unfused_bytes", "speedup", "feasible", "oracle"
    );

    let numeric = NumericConfig {
        kernel: KernelKind::Blocked,
    };
    let mut rows: Vec<Row> = Vec::with_capacity(machines.len() * probes.len());
    for machine in &machines {
        let compiler = Compiler::new(machine.clone());
        for chain in &probes {
            let d = chain.dims();
            let mut graph = OpGraph::new();
            let q = graph.add_input("q", d.m, d.k);
            let out = graph.append_chain(chain, q, "attn");
            graph.add_node(OpKind::Output, vec![out], "out");

            let (fused_bytes, feasible) = match compiler.compile(chain) {
                Ok(c) => (c.global_bytes, true),
                Err(_) => (0, false),
            };
            let (speedup, oracle_ok) = match flashfuser::validate_graph_with(
                &compiler,
                &graph,
                17,
                flashfuser::DEFAULT_TOLERANCE,
                numeric,
            ) {
                Ok(v) => {
                    let attention_fused = v
                        .plan
                        .fused_segments()
                        .any(|s| s.chain.kind().is_attention() && !s.fell_back);
                    (v.plan.speedup(), v.passed() && attention_fused)
                }
                Err(e) => {
                    eprintln!("  validation error on {}: {e}", machine.name);
                    (f64::NAN, false)
                }
            };
            let unfused_bytes = chain.unfused_global_bytes();
            println!(
                "{:<24} {:<28} {:>14} {:>14} {:>8.2} {:>9} {:>8}",
                machine.name,
                chain.to_string(),
                fused_bytes,
                unfused_bytes,
                speedup,
                feasible,
                if oracle_ok { "ok" } else { "FAIL" }
            );
            rows.push(Row {
                machine: machine.name.clone(),
                chain: chain.to_string(),
                fused_bytes,
                unfused_bytes,
                speedup,
                feasible,
                oracle_ok,
            });
        }
    }

    let plans_feasible = rows.iter().all(|r| r.feasible);
    let oracle_passed = rows.iter().all(|r| r.oracle_ok);
    let bytes_strictly_lower = rows
        .iter()
        .all(|r| r.feasible && r.fused_bytes < r.unfused_bytes);

    let mut record = String::from("{\n");
    record.push_str(&format!(
        concat!(
            "  \"bench\": \"attention\", \"quick\": {}, \"probes\": {},\n",
            "  \"machines\": [\"H100-SXM5 (simulated)\", \"tensix_like\"],\n",
            "  \"plans_feasible\": {}, \"oracle_passed\": {}, \"bytes_strictly_lower\": {},\n",
            "  \"rows\": [\n",
        ),
        quick,
        rows.len(),
        plans_feasible,
        oracle_passed,
        bytes_strictly_lower
    ));
    for (i, r) in rows.iter().enumerate() {
        record.push_str(&format!(
            "    {{\"machine\": \"{}\", \"chain\": \"{}\", \"fused_bytes\": {}, \"unfused_bytes\": {}, \"speedup\": {:.3}, \"feasible\": {}, \"oracle_ok\": {}}}{}\n",
            flashfuser::core::json::escape(&r.machine),
            flashfuser::core::json::escape(&r.chain),
            r.fused_bytes,
            r.unfused_bytes,
            r.speedup,
            r.feasible,
            r.oracle_ok,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    record.push_str("  ]\n}\n");

    let path = if quick {
        "BENCH_attention.quick.json"
    } else {
        "BENCH_attention.json"
    };
    std::fs::write(path, record).expect("write bench record");
    println!("wrote {path}");

    if !(plans_feasible && oracle_passed && bytes_strictly_lower) {
        eprintln!(
            "bench_attention: FAIL (plans_feasible={plans_feasible}, oracle_passed={oracle_passed}, bytes_strictly_lower={bytes_strictly_lower})"
        );
        std::process::exit(1);
    }
}
