//! Fig. 13: dsm_comm primitive bandwidth and utilisation vs cluster size.

use flashfuser_bench::h100;
use flashfuser_sim::microbench::{primitive_bandwidth, PrimitiveKind};

fn main() {
    let params = h100();
    println!(
        "== Fig. 13: dsm_comm primitive bandwidth (32768^2 tensor, 128^2 tiles, 1000 iters) =="
    );
    println!(
        "{:<10}{:>10}{:>16}{:>14}",
        "primitive", "cluster", "achieved GB/s", "utilisation"
    );
    for kind in [
        PrimitiveKind::Shuffle,
        PrimitiveKind::Reduce,
        PrimitiveKind::Mul,
    ] {
        for cls in [2usize, 4, 8, 16] {
            let m = primitive_bandwidth(&params, kind, cls, 1000);
            println!(
                "{:<10}{cls:>10}{:>16.0}{:>13.1}%",
                kind.name(),
                m.achieved / 1e9,
                100.0 * m.utilization
            );
        }
    }
}
