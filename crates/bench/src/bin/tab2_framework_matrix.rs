//! Table II: qualitative framework comparison, as realised in this
//! reproduction (cache hierarchy each policy may use, search strategy,
//! GPU support, GEMM-chain fusion capability).

fn main() {
    println!("== Table II: framework comparison (as reproduced) ==");
    println!(
        "{:<12}{:<14}{:<12}{:<10}{:<8}",
        "Framework", "Cache Hier.", "Strategy", "GPU", "Fusion"
    );
    let rows = [
        ("BOLT", "0/1", "Tuning", "yes", "yes"),
        ("Chimera", "1", "Analytical", "yes", "yes"),
        ("Welder", "0/1", "Analytical", "yes", "yes"),
        ("MCFuser", "1", "Analytical", "yes", "yes"),
        ("T10", "1/1.5", "Analytical", "no", "no"),
        ("WaferLLM", "1/1.5", "Handcrafted", "no", "no"),
        ("FlashFuser", "0/1/1.5", "Analytical", "yes", "yes"),
    ];
    for (f, c, s, g, fu) in rows {
        println!("{f:<12}{c:<14}{s:<12}{g:<10}{fu:<8}");
    }
    println!("\n(0 = registers, 1 = SMEM, 1.5 = DSM; see DESIGN.md for how");
    println!(" each envelope maps onto a policy in flashfuser-baselines.)");
}
