//! Fig. 17: end-to-end speedup vs the SGLang-class serving baseline on
//! the source models of S1-S8 and G1-G10 (M = 128).

use flashfuser_bench::h100;
use flashfuser_workloads::models::ModelSpec;
use flashfuser_workloads::{e2e_speedup, gated_ffn_chains, gemm_chains};

fn main() {
    let params = h100();
    println!("== Fig. 17: E2E speedup vs serving baseline (M = 128) ==");
    println!(
        "{:<6}{:<16}{:>14}{:>10}",
        "id", "model", "ffn speedup", "E2E"
    );
    let mut all = vec![];
    let workloads: Vec<_> = gated_ffn_chains()
        .into_iter()
        .chain(gemm_chains())
        .collect();
    for w in &workloads {
        let d = w.chain.dims();
        // Reconstruct the source model around the measured FFN subgraph.
        let model = ModelSpec {
            name: w.model,
            layers: 1,
            hidden: d.k,
            ffn_hidden: d.n,
            gated: w.chain.kind().is_gated(),
        };
        let r = e2e_speedup(&model, 128, &params);
        all.push(r.speedup);
        println!(
            "{:<6}{:<16}{:>14.2}{:>10.3}",
            w.id, w.model, r.ffn_speedup, r.speedup
        );
    }
    let avg = all.iter().sum::<f64>() / all.len() as f64;
    println!("average: {avg:.3} (paper: 1.32 on this suite; 1.24 overall)");
}
