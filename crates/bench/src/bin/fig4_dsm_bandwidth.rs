//! Fig. 4: DSM bandwidth and latency vs cluster size, with the
//! global-memory reference.

use flashfuser_bench::h100;
use flashfuser_sim::microbench::dsm_curve;

fn main() {
    let params = h100();
    let (points, global) = dsm_curve(&params);
    println!("== Fig. 4: DSM bandwidth / latency vs cluster size ==");
    println!(
        "{:<10}{:>16}{:>18}",
        "cluster", "bandwidth TB/s", "latency cycles"
    );
    for p in &points {
        println!(
            "{:<10}{:>16.2}{:>18.0}",
            p.cluster_size,
            p.bandwidth / 1e12,
            p.latency_cycles
        );
    }
    println!(
        "{:<10}{:>16.2}{:>18.0}   <- global memory reference",
        "global",
        global.bandwidth / 1e12,
        global.latency_cycles
    );
}
