//! Extension study: how much does each cluster-size limit buy?
//!
//! Sweeps the hardware cluster limit from 1 (no DSM, pre-Hopper) to 16
//! (H100) and reports the best fused kernel the search finds for the
//! large-intermediate workloads — the sensitivity study behind the
//! paper's Rule 2 discussion.

use flashfuser_bench::h100;
use flashfuser_core::{MemLevel, PruneConfig, SearchConfig, SearchEngine};
use flashfuser_sim::SimProfiler;
use flashfuser_workloads::{gated_ffn_chains, gemm_chains};

fn main() {
    let params = h100();
    let engine = SearchEngine::new(params.clone());
    println!("== Extension: best fused time (us) vs cluster-size limit ==");
    print!("{:<6}", "id");
    for limit in [1usize, 2, 4, 8, 16] {
        print!("{:>10}", format!("cls<={limit}"));
    }
    println!();
    let workloads: Vec<_> = gemm_chains()
        .into_iter()
        .chain(gated_ffn_chains())
        .filter(|w| ["G5", "G8", "S3", "S8"].contains(&w.id))
        .collect();
    for w in &workloads {
        print!("{:<6}", w.id);
        for limit in [1usize, 2, 4, 8, 16] {
            let config = SearchConfig {
                top_k: 11,
                prune: PruneConfig {
                    max_cluster: limit,
                    lowest_spill: if limit == 1 {
                        MemLevel::Smem
                    } else {
                        MemLevel::Dsm
                    },
                    allow_inter_cluster_reduce: true,
                },
                ..SearchConfig::default()
            };
            let mut profiler = SimProfiler::new(params.clone());
            match engine.search_with_profiler(&w.chain, &config, &mut profiler) {
                Ok(r) => print!("{:>10.2}", r.best().measured.unwrap().seconds * 1e6),
                Err(_) => print!("{:>10}", "-"),
            }
        }
        println!();
    }
}
