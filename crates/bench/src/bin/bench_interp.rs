//! Numeric-backend benchmark and `BENCH_interp.json` emitter.
//!
//! Two measurements, both naive-vs-blocked ([`KernelKind`]):
//!
//! * **raw GEMM throughput** — square `matmul_with` GFLOP/s at a ladder
//!   of dims, best-of-N timing windows so a noisy neighbour on the host
//!   cannot sink a run;
//! * **full-zoo validation wall-clock** — [`flashfuser::validate_graph_with`]
//!   over every model-zoo layer graph (scaled so the `f32` oracle can
//!   execute it), stitched execution under each backend. The reference
//!   interpretation inside `validate_graph` is always the naive oracle,
//!   so the zoo speedup is diluted by design — it is reported, not
//!   gated.
//!
//! The record is written to `BENCH_interp.json`
//! (`BENCH_interp.quick.json` under `FLASHFUSER_QUICK=1`, the
//! verify-gate mode, so a verify run never clobbers the committed
//! full-run baseline). CI greps the anchored `"kernel_faster": true`.
//!
//! Gates enforced here (the process exits non-zero on violation):
//!
//! * blocked beats naive at every dim ≥ 256;
//! * blocked is ≥ 5× naive at dim 1024 (a deliberately robust floor —
//!   the committed full run shows ~10×; 5× keeps a CI box with a noisy
//!   co-tenant from flaking);
//! * every zoo layer graph validates under **both** backends.

use flashfuser::graph::OpGraph;
use flashfuser::tensor::{KernelKind, NumericConfig};
use flashfuser::workloads::{large_model_zoo, model_zoo};
use flashfuser::{Compiler, CompilerOptions, DEFAULT_TOLERANCE};
use flashfuser_bench::{env_threads, geomean, h100, quick_mode};
use flashfuser_tensor::gemm::{gemm_flops, matmul_with};
use flashfuser_tensor::rng::seeded_matrix;
use std::time::Instant;

/// The dim every gate anchors on (the ISSUE 6 acceptance point).
const GATE_DIM: usize = 1024;

struct GemmRecord {
    dim: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
    speedup: f64,
    blocked_faster: bool,
}

struct ZooRecord {
    model: &'static str,
    naive_s: f64,
    blocked_s: f64,
    speedup: f64,
    passed: bool,
}

/// Best-of-N square-GEMM throughput: one warm-up run, then timed runs
/// until `budget` seconds are spent (at least three), keeping the best.
fn gemm_gflops(dim: usize, kind: KernelKind, budget: f64) -> f64 {
    let a = seeded_matrix(dim, dim, 1);
    let b = seeded_matrix(dim, dim, 2);
    let kernel = kind.kernel();
    std::hint::black_box(matmul_with(kernel, &a, &b).expect("square matmul"));
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut reps = 0;
    while spent < budget || reps < 3 {
        let t0 = Instant::now();
        std::hint::black_box(matmul_with(kernel, &a, &b).expect("square matmul"));
        let dt = t0.elapsed().as_secs_f64();
        spent += dt;
        reps += 1;
        best = best.min(dt);
    }
    gemm_flops(dim as u64, dim as u64, dim as u64) as f64 / best / 1e9
}

/// Wall-clock of one full-zoo validation sweep under `kind`, asserting
/// every graph passes. Returns (seconds, all_passed).
fn zoo_sweep(
    compiler: &Compiler,
    graphs: &[(&'static str, OpGraph)],
    kind: KernelKind,
) -> Vec<(f64, bool)> {
    let numeric = NumericConfig { kernel: kind };
    graphs
        .iter()
        .map(|(name, graph)| {
            let t0 = Instant::now();
            let v =
                flashfuser::validate_graph_with(compiler, graph, 42, DEFAULT_TOLERANCE, numeric)
                    .unwrap_or_else(|e| panic!("{name}: validation errored under {kind}: {e}"));
            (t0.elapsed().as_secs_f64(), v.passed())
        })
        .collect()
}

fn json_gemm(r: &GemmRecord) -> String {
    format!(
        concat!(
            "    {{\"dim\": {}, \"naive_gflops\": {:.2}, \"blocked_gflops\": {:.2}, ",
            "\"speedup\": {:.2}, \"blocked_faster\": {}}}"
        ),
        r.dim, r.naive_gflops, r.blocked_gflops, r.speedup, r.blocked_faster,
    )
}

fn json_zoo(r: &ZooRecord) -> String {
    format!(
        concat!(
            "    {{\"model\": \"{}\", \"naive_s\": {:.4}, \"blocked_s\": {:.4}, ",
            "\"speedup\": {:.2}, \"passed\": {}}}"
        ),
        r.model, r.naive_s, r.blocked_s, r.speedup, r.passed,
    )
}

fn main() {
    let params = h100();
    let quick = quick_mode();
    let threads = env_threads();
    let dims: &[usize] = if quick {
        &[256, GATE_DIM]
    } else {
        &[64, 256, 512, GATE_DIM, 2048]
    };
    let budget = if quick { 0.5 } else { 1.5 };

    println!("== numeric backends: naive vs packed blocked GEMM ==");
    println!(
        "best-of window {budget:.1}s per cell {}",
        if quick { "(quick mode)" } else { "" }
    );
    println!(
        "{:<8}{:>16}{:>16}{:>10}",
        "dim", "naive GF/s", "blocked GF/s", "speedup"
    );
    let mut gemm_records = Vec::new();
    for &dim in dims {
        let naive = gemm_gflops(dim, KernelKind::Naive, budget);
        let blocked = gemm_gflops(dim, KernelKind::Blocked, budget);
        let r = GemmRecord {
            dim,
            naive_gflops: naive,
            blocked_gflops: blocked,
            speedup: blocked / naive,
            blocked_faster: blocked > naive,
        };
        println!(
            "{:<8}{:>16.2}{:>16.2}{:>9.1}x",
            r.dim, r.naive_gflops, r.blocked_gflops, r.speedup
        );
        gemm_records.push(r);
    }

    // Full-zoo validation: stitched execution under each backend, the
    // reference interpretation always naive. Scaled so the oracle can
    // afford real f32 execution while the GEMMs still clear the packed
    // kernel's naive-fallback cutoff.
    let (hidden, tokens) = if quick { (128, 64) } else { (256, 128) };
    let mut options = CompilerOptions::new();
    if threads > 0 {
        let mut config = flashfuser::default_config_for(&params);
        config.threads = threads;
        options.config = Some(config);
    }
    options.batch_workers = threads;
    let compiler = Compiler::with_options(params, options).expect("no cache dir to create");
    let zoo: Vec<_> = model_zoo()
        .into_iter()
        .chain(large_model_zoo())
        .take(if quick { 2 } else { usize::MAX })
        .map(|m| (m.name, m.scaled_to(hidden).layer_graph(tokens)))
        .collect();

    println!("\n== full-zoo validate_graph wall-clock (hidden {hidden}, {tokens} tokens) ==");
    println!(
        "{:<14}{:>12}{:>12}{:>10}{:>9}",
        "model", "naive s", "blocked s", "speedup", "passed"
    );
    let naive_times = zoo_sweep(&compiler, &zoo, KernelKind::Naive);
    let blocked_times = zoo_sweep(&compiler, &zoo, KernelKind::Blocked);
    let mut zoo_records = Vec::new();
    for (((name, _), &(ns, np)), &(bs, bp)) in zoo.iter().zip(&naive_times).zip(&blocked_times) {
        let r = ZooRecord {
            model: name,
            naive_s: ns,
            blocked_s: bs,
            speedup: ns / bs,
            passed: np && bp,
        };
        println!(
            "{:<14}{:>12.4}{:>12.4}{:>9.1}x{:>9}",
            r.model, r.naive_s, r.blocked_s, r.speedup, r.passed
        );
        zoo_records.push(r);
    }
    let zoo_geomean = geomean(zoo_records.iter().map(|r| r.speedup));

    let gate = gemm_records
        .iter()
        .find(|r| r.dim == GATE_DIM)
        .expect("the gate dim is always measured");
    let kernel_faster = gemm_records
        .iter()
        .filter(|r| r.dim >= 256)
        .all(|r| r.blocked_faster)
        && gate.speedup >= 5.0;

    let gemm_body: Vec<String> = gemm_records.iter().map(json_gemm).collect();
    let zoo_body: Vec<String> = zoo_records.iter().map(json_zoo).collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"interp\",\n  \"quick\": {},\n",
            "  \"kernel_faster\": {},\n  \"speedup_at_{}\": {:.2},\n",
            "  \"gemm\": [\n{}\n  ],\n",
            "  \"zoo_geomean_speedup\": {:.2},\n  \"zoo\": [\n{}\n  ]\n}}\n"
        ),
        quick,
        kernel_faster,
        GATE_DIM,
        gate.speedup,
        gemm_body.join(",\n"),
        zoo_geomean,
        zoo_body.join(",\n")
    );
    let path = if quick {
        "BENCH_interp.quick.json"
    } else {
        "BENCH_interp.json"
    };
    std::fs::write(path, &json).expect("writing the benchmark record");
    println!("\nwrote {path}");

    // The gates. The 5x floor at dim 1024 is deliberately below the
    // ~10x the committed full run shows: a best-of window already
    // absorbs most scheduler noise, and the margin absorbs the rest.
    for r in gemm_records.iter().filter(|r| r.dim >= 256) {
        assert!(
            r.blocked_faster,
            "dim {}: blocked ({:.1} GF/s) is not faster than naive ({:.1} GF/s)",
            r.dim, r.blocked_gflops, r.naive_gflops
        );
    }
    assert!(
        gate.speedup >= 5.0,
        "dim {GATE_DIM}: blocked speedup {:.1}x is below the 5x floor",
        gate.speedup
    );
    for r in &zoo_records {
        assert!(r.passed, "{}: zoo validation diverged", r.model);
    }
    println!(
        "interp gates: OK (blocked faster at dim >= 256, >= 5x at {GATE_DIM}, zoo green; \
         measured {:.1}x at {GATE_DIM}, zoo geomean {:.2}x)",
        gate.speedup, zoo_geomean
    );
}
