//! Interconnect sensitivity sweep and `BENCH_machine.json` emitter —
//! also the `machine-smoke` step of `scripts/verify.sh`.
//!
//! The machine model is data now ([`MachineDescriptor`]): this bench
//! sweeps descriptor mutations along three axes plus a set of whole
//! targets, recompiles the probe workload at every point, and runs the
//! numeric oracle on each compiled plan:
//!
//! 1. **cluster size** — `max_cluster` from 1 (no DSM, pre-Hopper) to
//!    16 (H100), the paper's Rule 2 sensitivity;
//! 2. **DSM bandwidth** — the cluster tier's fabric bandwidth scaled
//!    from 0.25x to 4x of the H100's 3.27 TB/s;
//! 3. **SMEM capacity** — the block tier (and its per-peer DSM window)
//!    shrunk towards pre-Hopper sizes;
//! 4. **targets** — the built-in registry (`h100_sxm`, `a100_sxm`)
//!    plus the committed SRAM-rich non-NVIDIA descriptor
//!    `machines/tensix_like.json`, decoded through `core::codec` like
//!    any user-supplied `--machine` file.
//!
//! Every point compiles the probe chain as a whole graph and validates
//! the stitched plan against the per-op reference interpreter on
//! seeded inputs ([`validate_graph_with`]) — so a descriptor mutation
//! that silently broke the analyzer/cost/search stack would fail the
//! oracle, not just move a number. Gates (non-zero exit on violation):
//!
//! * every sweep point finds a feasible fused plan (`plans_feasible`);
//! * every stitched execution matches the oracle (`oracle_passed`);
//! * every whole-graph speedup is ≥ 1 (the per-segment fallback bar).

use flashfuser::prelude::*;
use flashfuser_bench::quick_mode;
use flashfuser_core::{decode_machine, MachineDescriptor, MemLevel};
use flashfuser_graph::OpKind;
use flashfuser_tensor::KernelKind;

/// One sweep point: a label pair and the descriptor to compile on.
struct Point {
    axis: &'static str,
    value: String,
    machine: MachineDescriptor,
}

/// One sweep point's outcome row.
struct Row {
    axis: &'static str,
    value: String,
    machine: String,
    fused_us: f64,
    speedup: f64,
    feasible: bool,
    oracle_ok: bool,
}

/// Loads the committed Tensix-like descriptor, tolerating both a
/// workspace-root and a crate-dir working directory.
fn tensix_like() -> MachineDescriptor {
    let candidates = [
        "machines/tensix_like.json",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../machines/tensix_like.json"
        ),
    ];
    for path in candidates {
        if let Ok(text) = std::fs::read_to_string(path) {
            return decode_machine(&text).expect("machines/tensix_like.json decodes");
        }
    }
    panic!("machines/tensix_like.json not found from {candidates:?}");
}

fn sweep_points(quick: bool) -> Vec<Point> {
    let h100 = MachineDescriptor::h100_sxm();
    let mut points = Vec::new();

    let clusters: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    for &c in clusters {
        let machine = h100
            .clone()
            .with_compute(|p| p.max_cluster = c)
            .expect("cluster limit within num_sms")
            .with_name(format!("h100/cluster<={c}"));
        points.push(Point {
            axis: "cluster",
            value: c.to_string(),
            machine,
        });
    }

    let bw_factors: &[f64] = if quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0]
    };
    for &f in bw_factors {
        let machine = h100
            .clone()
            .with_tier(MemLevel::Dsm, |t| t.bandwidth *= f)
            .expect("scaled DSM bandwidth stays valid")
            .with_name(format!("h100/dsm_bw x{f}"));
        points.push(Point {
            axis: "dsm_bandwidth",
            value: format!("x{f}"),
            machine,
        });
    }

    let smem_caps: &[u64] = if quick {
        &[128 * 1024, 227 * 1024]
    } else {
        &[96 * 1024, 160 * 1024, 227 * 1024]
    };
    for &cap in smem_caps {
        // The H100's DSM window mirrors SMEM; shrink both together.
        let machine = h100
            .clone()
            .with_tier(MemLevel::Smem, |t| t.capacity_bytes = cap)
            .and_then(|m| m.with_tier(MemLevel::Dsm, |t| t.capacity_bytes = cap))
            .expect("shrunk SMEM stays valid")
            .with_name(format!("h100/smem {}KiB", cap / 1024));
        points.push(Point {
            axis: "smem_capacity",
            value: format!("{}KiB", cap / 1024),
            machine,
        });
    }

    let mut targets = vec![MachineDescriptor::h100_sxm(), tensix_like()];
    if !quick {
        targets.push(MachineDescriptor::a100_sxm());
    }
    for machine in targets {
        points.push(Point {
            axis: "target",
            value: machine.name.clone(),
            machine,
        });
    }
    points
}

fn main() {
    let quick = quick_mode();
    let chain = if quick {
        ChainSpec::standard_ffn(128, 1024, 256, 256, Activation::Relu)
    } else {
        ChainSpec::standard_ffn(128, 2048, 512, 512, Activation::Relu)
    };
    let d = chain.dims();
    let mut graph = OpGraph::new();
    let x = graph.add_input("tokens", d.m, d.k);
    let out = graph.append_chain(&chain, x, "l1");
    graph.add_node(OpKind::Output, vec![out], "out");

    let points = sweep_points(quick);
    println!("== machine descriptor sensitivity sweep ==");
    println!(
        "probe: {chain}  points: {} {}",
        points.len(),
        if quick { "(quick mode)" } else { "" }
    );
    println!(
        "{:<16} {:<10} {:<22} {:>10} {:>9} {:>9} {:>8}",
        "axis", "value", "machine", "fused_us", "speedup", "feasible", "oracle"
    );

    let numeric = NumericConfig {
        kernel: KernelKind::Blocked,
    };
    let mut rows: Vec<Row> = Vec::with_capacity(points.len());
    for point in &points {
        let compiler = Compiler::new(point.machine.clone());
        let feasible = compiler.compile(&chain).is_ok();
        let (fused_us, speedup, oracle_ok) = match flashfuser::validate_graph_with(
            &compiler,
            &graph,
            7,
            flashfuser::DEFAULT_TOLERANCE,
            numeric,
        ) {
            Ok(v) => {
                let plan = compiler
                    .compile_graph(&graph)
                    .expect("validated graph recompiles (cache hit)");
                (plan.seconds * 1e6, plan.speedup(), v.passed())
            }
            Err(e) => {
                eprintln!("  validation error on {}: {e}", point.machine.name);
                (f64::NAN, f64::NAN, false)
            }
        };
        println!(
            "{:<16} {:<10} {:<22} {:>10.2} {:>9.2} {:>9} {:>8}",
            point.axis,
            point.value,
            point.machine.name,
            fused_us,
            speedup,
            feasible,
            if oracle_ok { "ok" } else { "FAIL" }
        );
        rows.push(Row {
            axis: point.axis,
            value: point.value.clone(),
            machine: point.machine.name.clone(),
            fused_us,
            speedup,
            feasible,
            oracle_ok,
        });
    }

    let plans_feasible = rows.iter().all(|r| r.feasible);
    let oracle_passed = rows.iter().all(|r| r.oracle_ok);
    let speedups_ok = rows.iter().all(|r| r.speedup >= 1.0);

    let mut record = String::from("{\n");
    record.push_str(&format!(
        concat!(
            "  \"bench\": \"machine\", \"quick\": {}, \"points\": {},\n",
            "  \"axes\": [\"cluster\", \"dsm_bandwidth\", \"smem_capacity\", \"target\"],\n",
            "  \"probe\": \"{}\",\n",
            "  \"plans_feasible\": {}, \"oracle_passed\": {}, \"speedups_ok\": {},\n",
            "  \"rows\": [\n",
        ),
        quick,
        rows.len(),
        chain,
        plans_feasible,
        oracle_passed,
        speedups_ok
    ));
    for (i, r) in rows.iter().enumerate() {
        record.push_str(&format!(
            "    {{\"axis\": \"{}\", \"value\": \"{}\", \"machine\": \"{}\", \"fused_us\": {:.3}, \"speedup\": {:.3}, \"feasible\": {}, \"oracle_ok\": {}}}{}\n",
            r.axis,
            r.value,
            flashfuser::core::json::escape(&r.machine),
            r.fused_us,
            r.speedup,
            r.feasible,
            r.oracle_ok,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    record.push_str("  ]\n}\n");

    let path = if quick {
        "BENCH_machine.quick.json"
    } else {
        "BENCH_machine.json"
    };
    std::fs::write(path, record).expect("write bench record");
    println!("wrote {path}");

    if !(plans_feasible && oracle_passed && speedups_ok) {
        eprintln!("bench_machine: GATE VIOLATION (see {path})");
        std::process::exit(1);
    }
}
