//! Plan-cache benchmark and `BENCH_cache.json` emitter.
//!
//! For each chain this measures, through one `flashfuser::Compiler`:
//!
//! * **cold** — first compile (cache miss, full fusion search);
//! * **warm** — second compile of the same graph (in-memory LRU hit);
//! * **disk** — first compile through a *fresh* compiler pointed at the
//!   same cache directory (on-disk hit, JSON decode + promote);
//!
//! asserts the cached plan is **bit-identical** to an independent
//! from-scratch search, then runs a duplicate-heavy batch to report the
//! achieved hit rate. The record is written to `BENCH_cache.json`
//! (`BENCH_cache.quick.json` under `FLASHFUSER_QUICK=1`, the
//! verify-gate mode, so a verify run never clobbers the committed
//! full-run baseline).
//!
//! Gates enforced here (the process exits non-zero on violation):
//!
//! * quick mode: warm < cold for every chain;
//! * full mode: warm is additionally ≥ 10× faster than cold on G4/G5
//!   (the ISSUE 2 acceptance bar).

use flashfuser::{Compiler, CompilerOptions};
use flashfuser_bench::{env_threads, h100, quick_mode};
use flashfuser_workloads::gemm_chains;
use std::time::Instant;

struct CacheRecord {
    id: &'static str,
    cold_s: f64,
    warm_s: f64,
    disk_s: f64,
    warm_speedup: f64,
    disk_speedup: f64,
    warm_faster: bool,
    bit_identical: bool,
    batch_requests: u64,
    batch_searches: u64,
    hit_rate: f64,
}

fn json_record(r: &CacheRecord) -> String {
    format!(
        concat!(
            "    {{\"id\": \"{}\", \"cold_s\": {:.6}, \"warm_s\": {:.6}, ",
            "\"disk_s\": {:.6}, \"warm_speedup\": {:.1}, \"disk_speedup\": {:.1}, ",
            "\"warm_faster\": {}, \"bit_identical\": {}, ",
            "\"batch_requests\": {}, \"batch_searches\": {}, \"hit_rate\": {:.3}}}"
        ),
        r.id,
        r.cold_s,
        r.warm_s,
        r.disk_s,
        r.warm_speedup,
        r.disk_speedup,
        r.warm_faster,
        r.bit_identical,
        r.batch_requests,
        r.batch_searches,
        r.hit_rate,
    )
}

fn main() {
    let params = h100();
    let quick = quick_mode();
    let threads = env_threads();
    let ids: &[&str] = if quick { &["G3"] } else { &["G4", "G5"] };
    let cache_dir =
        std::env::temp_dir().join(format!("flashfuser-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!("== plan cache: cold vs warm vs on-disk compile latency ==");
    println!(
        "cache dir: {} {}",
        cache_dir.display(),
        if quick { "(quick mode)" } else { "" }
    );
    println!(
        "{:<6}{:>12}{:>12}{:>12}{:>10}{:>10}{:>14}{:>10}",
        "id", "cold s", "warm s", "disk s", "warm x", "disk x", "bit-identical", "hit rate"
    );

    let mut records = Vec::new();
    for w in gemm_chains().into_iter().filter(|w| ids.contains(&w.id)) {
        let mut options = CompilerOptions::new().with_cache_dir(&cache_dir);
        options.batch_workers = threads;
        if threads > 0 {
            let mut config = flashfuser::default_config_for(&params);
            config.threads = threads;
            options.config = Some(config);
        }
        let compiler =
            Compiler::with_options(params.clone(), options.clone()).expect("cache dir creatable");

        // Cold: full search, populates memory + disk.
        let t0 = Instant::now();
        let cold = compiler.compile(&w.chain).expect("feasible chain");
        let cold_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            compiler.searches_run(),
            1,
            "{}: cold path must search",
            w.id
        );

        // Warm: in-memory hit.
        let t0 = Instant::now();
        let warm = compiler.compile(&w.chain).expect("feasible chain");
        let warm_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            compiler.searches_run(),
            1,
            "{}: warm hit must not search",
            w.id
        );

        // Disk: a fresh compiler (empty memory tier) over the same dir.
        let fresh =
            Compiler::with_options(params.clone(), options.clone()).expect("cache dir creatable");
        let t0 = Instant::now();
        let disk = fresh.compile(&w.chain).expect("feasible chain");
        let disk_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            fresh.searches_run(),
            0,
            "{}: disk hit must not search",
            w.id
        );

        // Bit-identity: an independent from-scratch compile must agree
        // exactly with every cached variant (PR 1's determinism).
        let scratch = flashfuser::compile(&w.chain, &params).expect("feasible chain");
        let bit_identical = scratch.plan == cold.plan
            && scratch.plan == warm.plan
            && scratch.plan == disk.plan
            && scratch.measured_seconds.to_bits() == warm.measured_seconds.to_bits()
            && scratch.measured_seconds.to_bits() == disk.measured_seconds.to_bits()
            && scratch.global_bytes == warm.global_bytes
            && scratch.feasible_candidates == warm.feasible_candidates;
        assert!(
            bit_identical,
            "{}: cached plan diverged from fresh search",
            w.id
        );

        // Hit rate on a duplicate-heavy batch (the serving-traffic
        // shape): 8 requests, 1 unique graph, against a warm cache.
        let batch: Vec<_> = (0..8).map(|_| w.chain.clone()).collect();
        let before = fresh.searches_run();
        let results = fresh.compile_batch(&batch);
        assert!(results.iter().all(Result::is_ok));
        let batch_searches = fresh.searches_run() - before;
        let stats = fresh.cache_stats();

        let record = CacheRecord {
            id: w.id,
            cold_s,
            warm_s,
            disk_s,
            warm_speedup: cold_s / warm_s,
            disk_speedup: cold_s / disk_s,
            warm_faster: warm_s < cold_s,
            bit_identical,
            batch_requests: batch.len() as u64,
            batch_searches,
            hit_rate: stats.hit_rate(),
        };
        println!(
            "{:<6}{:>12.4}{:>12.6}{:>12.6}{:>9.0}x{:>9.0}x{:>14}{:>9.0}%",
            record.id,
            record.cold_s,
            record.warm_s,
            record.disk_s,
            record.warm_speedup,
            record.disk_speedup,
            record.bit_identical,
            record.hit_rate * 100.0,
        );
        records.push(record);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let body: Vec<String> = records.iter().map(json_record).collect();
    let json = format!(
        "{{\n  \"bench\": \"cache\",\n  \"quick\": {},\n  \"chains\": [\n{}\n  ]\n}}\n",
        quick,
        body.join(",\n")
    );
    let path = if quick {
        "BENCH_cache.quick.json"
    } else {
        "BENCH_cache.json"
    };
    std::fs::write(path, &json).expect("writing the benchmark record");
    println!("\nwrote {path}");

    // The gates. Quick mode (CI): warm must beat cold. Full mode: the
    // acceptance bar is >= 10x on G4/G5 — comfortably met, since a warm
    // hit is a hash lookup against a multi-second search.
    for r in &records {
        assert!(
            r.warm_faster,
            "{}: warm-cache compile ({:.6}s) is not faster than cold ({:.6}s)",
            r.id, r.warm_s, r.cold_s
        );
        if !quick {
            assert!(
                r.warm_speedup >= 10.0,
                "{}: warm-cache speedup {:.1}x is below the 10x acceptance bar",
                r.id,
                r.warm_speedup
            );
        }
    }
    println!(
        "cache gates: OK (warm < cold{})",
        if quick { "" } else { ", warm >= 10x" }
    );
}
