//! Serving load benchmark and `BENCH_serve.json` emitter — also the
//! `serve-smoke` step of `scripts/verify.sh`.
//!
//! Starts the compilation service in-process on an ephemeral loopback
//! port and drives it the way a deployment would:
//!
//! 1. **cold pass** — one request per shape in the mix (every one a
//!    cache miss running a full fusion search);
//! 2. **warm load** — N client threads x M requests round-robin over
//!    the same mix (plus a duplicate-heavy `/batch` and periodic
//!    `/healthz` probes, so the traffic is genuinely mixed), measuring
//!    client-side latency per request;
//! 3. **same-key burst** — K concurrent requests for one *new* shape,
//!    which must trigger exactly one search (single-flight coalescing
//!    + cache);
//! 4. **connection reuse** — the same traffic two ways: one-shot
//!    (connect per request, `Connection: close`) versus one persistent
//!    keep-alive connection driving pipelined batches. The throughput
//!    ratio is the keep-alive payoff and is gated;
//! 5. **warm-snapshot replica** — `POST /admin/snapshot` exports the
//!    warm plan cache, a *fresh* compiler + server preloads it, and the
//!    whole shape mix replays against the replica — which must answer
//!    every request from the snapshot (zero new searches, byte-identical
//!    responses);
//! 6. **stats + shutdown** — `GET /stats` is parsed with
//!    `flashfuser_core::json` (the same parser the server uses) and
//!    the server is shut down through `POST /admin/shutdown`.
//!
//! Gates enforced here (the process exits non-zero on violation):
//!
//! * zero errors: no 4xx/5xx, no dropped responses, no admission
//!   rejections at this load (the queue is deep enough);
//! * cache hit rate over the run ≥ 90 % (the repeated mix hits);
//! * warm p99 latency < the fastest cold compile; in full mode the
//!   mean cold compile must additionally be ≥ 100x the warm p99 (the
//!   ISSUE 5 acceptance bar) — on hosts with ≥ 4 cores. On smaller
//!   hosts the client-side p99 tail is dominated by the scheduler
//!   multiplexing client + worker threads over one core, so the bar
//!   there is 10x (same policy as PR 1's parallel-speedup criterion;
//!   the record carries `host_threads` so the reader can tell which
//!   bar applied);
//! * every response for the probe shape is byte-identical — across
//!   cold/warm/coalesced requests *and* across one-shot vs pipelined
//!   connections *and* across the snapshot-preloaded replica;
//! * the same-key burst runs exactly one search;
//! * keep-alive throughput beats one-shot by ≥ 10x on ≥ 4-core hosts
//!   (≥ 2x on smaller hosts, same split as above) — `reuse_ok`;
//! * the preloaded replica re-serves the mix with **zero** searches and
//!   ≥ 90 % hit rate — `snapshot_warm`.

use flashfuser::serve::client;
use flashfuser::serve::ServeOptions;
use flashfuser::{service, Compiler, CompilerOptions};
use flashfuser_bench::{env_threads, h100, quick_mode};
use flashfuser_core::codec::encode_chain;
use flashfuser_core::json;
use flashfuser_graph::ChainSpec;
use flashfuser_tensor::Activation;
use flashfuser_workloads::gemm_chains;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One `/compile` request body per shape in the mix.
fn shape_mix(quick: bool) -> Vec<String> {
    let ids: &[&str] = if quick {
        &["G1", "G2", "G3"]
    } else {
        &["G4", "G5", "G6", "G8"]
    };
    let mut bodies: Vec<String> = gemm_chains()
        .into_iter()
        .filter(|w| ids.contains(&w.id))
        .map(|w| format!("{{\"chain\": {}}}", encode_chain(&w.chain)))
        .collect();
    // One conv block (Table V C1/C2) so the im2col lowering path is on
    // the serving hot path too.
    bodies.push(if quick {
        "{\"conv\": {\"dims\": [64, 56, 56, 256, 64, 1, 1]}}".to_string()
    } else {
        // Table V C5: the 3x3 first kernel exercises the widest im2col.
        "{\"conv\": {\"dims\": [64, 56, 56, 64, 256, 3, 1]}}".to_string()
    });
    bodies
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn fetch_stats(addr: SocketAddr) -> json::JsonValue {
    let response = client::get(addr, "/stats").expect("GET /stats");
    assert_eq!(response.status, 200, "/stats must answer 200");
    json::parse(response.body_utf8()).expect("stats JSON parses with core::json")
}

fn stat(doc: &json::JsonValue, section: &str, key: &str) -> u64 {
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(json::JsonValue::as_u64)
        .unwrap_or_else(|| panic!("stats field {section}.{key} missing"))
}

fn main() {
    let quick = quick_mode();
    let params = h100();
    let threads = env_threads();
    let workers = if threads > 0 {
        threads
    } else if quick {
        4
    } else {
        8
    };
    let (clients, per_client) = if quick { (4, 25) } else { (8, 50) };
    let burst = 8usize;

    let compiler = Arc::new(
        Compiler::with_options(params, CompilerOptions::new()).expect("memory-only compiler"),
    );
    let server = service::start(
        Arc::clone(&compiler),
        ("127.0.0.1", 0),
        ServeOptions {
            workers,
            queue_depth: 64,
            ..ServeOptions::default()
        },
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.addr();
    let mix = shape_mix(quick);

    println!("== serve: loopback load benchmark ==");
    println!(
        "addr: {addr}  workers: {workers}  clients: {clients} x {per_client} req  shapes: {} {}",
        mix.len(),
        if quick { "(quick mode)" } else { "" }
    );

    // -- 1. cold pass ---------------------------------------------------
    let mut cold_us: Vec<u64> = Vec::with_capacity(mix.len());
    let mut probe_body = Vec::new();
    for (i, body) in mix.iter().enumerate() {
        let t0 = Instant::now();
        let response = client::post(addr, "/compile", body.as_bytes()).expect("cold compile");
        let us = t0.elapsed().as_micros() as u64;
        assert_eq!(
            response.status,
            200,
            "cold compile failed: {}",
            response.body_utf8()
        );
        cold_us.push(us);
        if i == 0 {
            probe_body = response.body;
        }
        println!("  cold shape {i}: {:.2} ms", us as f64 / 1e3);
    }
    cold_us.sort_unstable();
    let cold_min = cold_us[0];
    let cold_mean = cold_us.iter().sum::<u64>() / cold_us.len() as u64;

    // -- 2. warm load ---------------------------------------------------
    let latencies = Mutex::new(Vec::<u64>::new());
    let next = AtomicUsize::new(0);
    let identical = AtomicBool::new(true);
    let errors = AtomicUsize::new(0);
    let total = clients * per_client;
    let t_load = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut local = Vec::with_capacity(per_client);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let shape = i % mix.len();
                    let t0 = Instant::now();
                    match client::post(addr, "/compile", mix[shape].as_bytes()) {
                        Ok(response) if response.status == 200 => {
                            local.push(t0.elapsed().as_micros() as u64);
                            if shape == 0 && response.body != probe_body {
                                identical.store(false, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Every 16th request, interleave a health probe so
                    // the traffic is mixed, not compile-only.
                    if i.is_multiple_of(16) && client::get(addr, "/healthz").is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let load_s = t_load.elapsed().as_secs_f64();
    let mut warm_us = latencies.into_inner().unwrap();
    warm_us.sort_unstable();
    let warm_p50 = percentile(&warm_us, 0.50);
    let warm_p99 = percentile(&warm_us, 0.99);
    let throughput = total as f64 / load_s;

    // A duplicate-heavy batch (each spec twice) through the same cache.
    let batch_body = format!(
        "{{\"requests\": [{}]}}",
        mix.iter()
            .chain(mix.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join(", ")
    );
    let response = client::post(addr, "/batch", batch_body.as_bytes()).expect("batch request");
    assert_eq!(response.status, 200, "batch must succeed");

    // -- 3. same-key burst ----------------------------------------------
    let burst_chain = ChainSpec::standard_ffn(64, 256, 128, 128, Activation::Gelu).named("burst");
    let burst_body = format!("{{\"chain\": {}}}", encode_chain(&burst_chain));
    let searches_before = compiler.searches_run();
    std::thread::scope(|scope| {
        for _ in 0..burst {
            let body = burst_body.as_bytes();
            scope.spawn(move || {
                let response = client::post(addr, "/compile", body).expect("burst compile");
                assert_eq!(response.status, 200);
            });
        }
    });
    let burst_searches = compiler.searches_run() - searches_before;

    // -- 4. connection reuse --------------------------------------------
    // Same warm traffic, two connection disciplines. `/healthz` keeps
    // the handler cost near zero so the ratio isolates what this phase
    // is about: per-request connection setup/teardown vs reuse.
    let oneshot_n: usize = if quick { 100 } else { 200 };
    let reuse_depth: usize = 16;
    let reuse_batches: usize = if quick { 25 } else { 50 };
    let t_oneshot = Instant::now();
    for _ in 0..oneshot_n {
        match client::get(addr, "/healthz") {
            Ok(response) if response.status == 200 => {}
            _ => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let oneshot_rps = oneshot_n as f64 / t_oneshot.elapsed().as_secs_f64().max(1e-9);
    let batch_items: Vec<(&str, &str, &[u8])> = (0..reuse_depth)
        .map(|_| ("GET", "/healthz", &[] as &[u8]))
        .collect();
    let mut keep = client::Connection::open(addr).expect("open keep-alive connection");
    let t_reuse = Instant::now();
    for _ in 0..reuse_batches {
        match keep.pipeline(&batch_items) {
            Ok(responses) => {
                for response in responses {
                    if response.status != 200 {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let reuse_n = reuse_depth * reuse_batches;
    let reuse_rps = reuse_n as f64 / t_reuse.elapsed().as_secs_f64().max(1e-9);
    let reuse_ratio = reuse_rps / oneshot_rps.max(1e-9);
    // The same connection must also serve real compiles, pipelined,
    // byte-identical to the one-shot probe.
    let compile_batch: Vec<(&str, &str, &[u8])> = (0..4)
        .map(|_| ("POST", "/compile", mix[0].as_bytes()))
        .collect();
    match keep.pipeline(&compile_batch) {
        Ok(responses) => {
            for response in responses {
                if response.status != 200 || response.body != probe_body {
                    identical.store(false, Ordering::Relaxed);
                }
            }
        }
        Err(_) => {
            errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    drop(keep);

    // -- 5. warm-snapshot replica ---------------------------------------
    let snap_dir = std::env::temp_dir().join(format!("ff-bench-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let snapshot_body = format!("{{\"dir\": \"{}\"}}", snap_dir.display());
    let response =
        client::post(addr, "/admin/snapshot", snapshot_body.as_bytes()).expect("snapshot export");
    assert_eq!(response.status, 200, "snapshot export must succeed");
    let export_doc = json::parse(response.body_utf8()).expect("snapshot response parses");
    let snapshot_exported = export_doc
        .get("exported")
        .and_then(json::JsonValue::as_u64)
        .expect("snapshot response carries the export count");
    assert!(
        snapshot_exported >= mix.len() as u64,
        "snapshot must cover the whole mix: exported {snapshot_exported} < {}",
        mix.len()
    );
    // A brand-new compiler (empty cache, zero searches) boots from the
    // snapshot — the fresh-replica deployment story.
    let replica_compiler = Arc::new(
        Compiler::with_options(h100(), CompilerOptions::new()).expect("memory-only compiler"),
    );
    let preloaded = replica_compiler
        .preload(&snap_dir)
        .expect("preload the snapshot");
    assert_eq!(
        preloaded as u64, snapshot_exported,
        "preload reads every record"
    );
    let replica = service::start(
        Arc::clone(&replica_compiler),
        ("127.0.0.1", 0),
        ServeOptions {
            workers,
            queue_depth: 64,
            ..ServeOptions::default()
        },
    )
    .expect("bind the replica");
    let replica_addr = replica.addr();
    let mut replica_identical = true;
    for (i, body) in mix.iter().enumerate() {
        let response =
            client::post(replica_addr, "/compile", body.as_bytes()).expect("replica compile");
        if response.status != 200 {
            errors.fetch_add(1, Ordering::Relaxed);
        }
        if i == 0 && response.body != probe_body {
            replica_identical = false;
        }
    }
    let replica_stats = fetch_stats(replica_addr);
    let preload_hits = stat(&replica_stats, "snapshot", "preload_hits");
    let replica_hits =
        stat(&replica_stats, "cache", "mem_hits") + stat(&replica_stats, "cache", "disk_hits");
    let replica_misses = stat(&replica_stats, "cache", "misses");
    let snapshot_hit_rate = replica_hits as f64 / (replica_hits + replica_misses).max(1) as f64;
    let snapshot_searches = replica_compiler.searches_run();
    replica.shutdown();
    let _ = std::fs::remove_dir_all(&snap_dir);

    // -- 6. stats + shutdown --------------------------------------------
    let stats = fetch_stats(addr);
    let rejected = stat(&stats, "admission", "rejected_busy");
    let dropped = stat(&stats, "outcomes", "dropped");
    let bad = stat(&stats, "outcomes", "bad_requests");
    let coalesced = stat(&stats, "compiler", "coalesced");
    let mem_hits = stat(&stats, "cache", "mem_hits");
    let disk_hits = stat(&stats, "cache", "disk_hits");
    let misses = stat(&stats, "cache", "misses");
    let hit_rate = (mem_hits + disk_hits) as f64 / (mem_hits + disk_hits + misses).max(1) as f64;
    let response = client::post(addr, "/admin/shutdown", b"").expect("shutdown control");
    assert_eq!(response.status, 200);
    server.wait();

    // -- gates ----------------------------------------------------------
    let errors = errors.load(Ordering::Relaxed) as u64 + dropped + bad;
    let bit_identical = identical.load(Ordering::Relaxed);
    let warm_faster = warm_p99 < cold_min;
    let cold_over_warm_p99 = cold_mean as f64 / warm_p99.max(1) as f64;
    let hit_ok = hit_rate >= 0.90;
    let burst_ok = burst_searches == 1;
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let ratio_target = if host_threads >= 4 { 100.0 } else { 10.0 };
    let ratio_ok = quick || cold_over_warm_p99 >= ratio_target;
    // Keep-alive payoff bar: 10x on real multi-core hosts, 2x when the
    // scheduler multiplexes client + reactor + workers over <4 cores
    // (PR 1's parallel-speedup policy split).
    let reuse_target = if host_threads >= 4 { 10.0 } else { 2.0 };
    let reuse_ok = reuse_ratio >= reuse_target;
    let snapshot_warm = snapshot_searches == 0
        && snapshot_hit_rate >= 0.90
        && replica_identical
        && preload_hits >= mix.len() as u64;

    println!(
        "cold:  min {:.2} ms, mean {:.2} ms",
        cold_min as f64 / 1e3,
        cold_mean as f64 / 1e3
    );
    println!(
        "warm:  p50 {:.2} ms, p99 {:.2} ms, {:.0} req/s over {} requests",
        warm_p50 as f64 / 1e3,
        warm_p99 as f64 / 1e3,
        throughput,
        total
    );
    println!(
        "cache: {:.1}% hit rate, {} coalesced, burst searches: {}",
        hit_rate * 100.0,
        coalesced,
        burst_searches
    );
    println!(
        "reuse: one-shot {oneshot_rps:.0} req/s vs pipelined {reuse_rps:.0} req/s \
         ({reuse_ratio:.1}x, target {reuse_target:.0}x)"
    );
    println!(
        "snapshot: exported {snapshot_exported}, preload hits {preload_hits}, \
         replica searches {snapshot_searches}, replica hit rate {:.1}%",
        snapshot_hit_rate * 100.0
    );
    println!(
        "gates: errors={errors} rejected={rejected} bit_identical={bit_identical} \
         warm_faster={warm_faster} cold/warm_p99={cold_over_warm_p99:.0}x hit_ok={hit_ok} \
         burst_ok={burst_ok} reuse_ok={reuse_ok} snapshot_warm={snapshot_warm}"
    );

    let record = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"quick\": {quick},\n",
            "  \"workers\": {workers}, \"clients\": {clients}, \"requests\": {requests}, ",
            "\"shapes\": {shapes},\n",
            "  \"throughput_rps\": {throughput:.1},\n",
            "  \"cold_min_us\": {cold_min}, \"cold_mean_us\": {cold_mean},\n",
            "  \"warm_p50_us\": {warm_p50}, \"warm_p99_us\": {warm_p99},\n",
            "  \"cold_over_warm_p99\": {ratio:.1}, \"ratio_target\": {ratio_target:.0}, ",
            "\"host_threads\": {host_threads},\n",
            "  \"hit_rate\": {hit_rate:.3}, \"coalesced\": {coalesced}, ",
            "\"burst_searches\": {burst_searches},\n",
            "  \"oneshot_rps\": {oneshot_rps:.1}, \"reuse_rps\": {reuse_rps:.1},\n",
            "  \"reuse_ratio\": {reuse_ratio:.2}, \"reuse_target\": {reuse_target:.0}, ",
            "\"reuse_ok\": {reuse_ok},\n",
            "  \"snapshot_exported\": {snapshot_exported}, ",
            "\"preload_hits\": {preload_hits}, ",
            "\"snapshot_searches\": {snapshot_searches},\n",
            "  \"snapshot_hit_rate\": {snapshot_hit_rate:.3}, ",
            "\"snapshot_warm\": {snapshot_warm},\n",
            "  \"errors\": {errors}, \"rejected_busy\": {rejected},\n",
            "  \"bit_identical\": {bit_identical}, \"warm_faster\": {warm_faster}\n",
            "}}\n",
        ),
        quick = quick,
        workers = workers,
        clients = clients,
        requests = total,
        shapes = mix.len(),
        throughput = throughput,
        cold_min = cold_min,
        cold_mean = cold_mean,
        warm_p50 = warm_p50,
        warm_p99 = warm_p99,
        ratio = cold_over_warm_p99,
        ratio_target = ratio_target,
        host_threads = host_threads,
        hit_rate = hit_rate,
        coalesced = coalesced,
        burst_searches = burst_searches,
        oneshot_rps = oneshot_rps,
        reuse_rps = reuse_rps,
        reuse_ratio = reuse_ratio,
        reuse_target = reuse_target,
        reuse_ok = reuse_ok,
        snapshot_exported = snapshot_exported,
        preload_hits = preload_hits,
        snapshot_searches = snapshot_searches,
        snapshot_hit_rate = snapshot_hit_rate,
        snapshot_warm = snapshot_warm,
        errors = errors,
        rejected = rejected,
        bit_identical = bit_identical,
        warm_faster = warm_faster,
    );
    let path = if quick {
        "BENCH_serve.quick.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, record).expect("write bench record");
    println!("wrote {path}");

    let pass = errors == 0
        && rejected == 0
        && bit_identical
        && warm_faster
        && hit_ok
        && burst_ok
        && ratio_ok
        && reuse_ok
        && snapshot_warm;
    if !pass {
        eprintln!("bench_serve: GATE VIOLATION (see {path})");
        std::process::exit(1);
    }
}
