//! Table III: the pruning cascade for GPT-6.7B
//! (M=256, N=16384, K=L=4096).

use flashfuser_bench::h100;
use flashfuser_core::prune::{count_cascade, PruneConfig};
use flashfuser_graph::ChainSpec;
use flashfuser_tensor::Activation;

fn main() {
    let chain = ChainSpec::standard_ffn(256, 16384, 4096, 4096, Activation::Relu);
    let stats = count_cascade(&chain, &h100(), &PruneConfig::default());
    println!("== Table III: pruning cascade (GPT-6.7B, M=256) ==");
    println!("{stats}");
    println!("\npaper reference: 2.75e13 -> 1.14e8 -> 2.47e7 -> 1.44e7 -> 9.62e6 -> 1.15e6");
    println!("traditional (no clusters) pruned space ~1e4; ours remains ~1e6 (\u{a7}III).");
}
