//! Table IV: the 41 spatial/temporal partitions of four loop dims.

use flashfuser_core::LoopSchedule;

fn main() {
    let all = LoopSchedule::enumerate_all();
    println!("== Table IV: spatial/temporal partitions ==");
    println!("{:<10}{:>12}{:>12}", "#spatial", "schedules", "paper");
    let paper = [24, 12, 4, 1];
    for n in 1..=4 {
        let count = all.iter().filter(|s| s.spatial().len() == n).count();
        println!("{n:<10}{count:>12}{:>12}", paper[n - 1]);
    }
    println!("total     {:>12}{:>12}", all.len(), 41);
    println!("\nExamples:");
    for s in all.iter().take(6) {
        println!("  {}", s.name());
    }
}
