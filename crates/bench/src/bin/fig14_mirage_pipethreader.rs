//! Fig. 14: FlashFuser vs Mirage and vs PipeThreader on S1-S8.

use flashfuser_baselines::{Baseline, FlashFuserPolicy, MiragePolicy, PipeThreaderPolicy};
use flashfuser_bench::{geomean, h100};
use flashfuser_workloads::gated_ffn_chains;

fn main() {
    let params = h100();
    let ff = FlashFuserPolicy::new(params.clone());
    let mirage = MiragePolicy::new(params.clone());
    let pipe = PipeThreaderPolicy::new(params.clone());
    println!("== Fig. 14: FlashFuser vs Mirage / PipeThreader (S1-S8) ==");
    println!("{:<6}{:>16}{:>20}", "id", "vs Mirage", "vs PipeThreader");
    let (mut vs_m, mut vs_p) = (vec![], vec![]);
    for w in gated_ffn_chains() {
        let f = ff.run(&w.chain).seconds;
        let m = mirage.run(&w.chain).seconds / f;
        let p = pipe.run(&w.chain).seconds / f;
        vs_m.push(m);
        vs_p.push(p);
        println!("{:<6}{m:>16.2}{p:>20.2}", w.id);
    }
    println!("{:<6}{:>16.2}{:>20.2}", "geo", geomean(vs_m), geomean(vs_p));
}
