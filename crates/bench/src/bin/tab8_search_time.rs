//! Table VIII: search-engine time vs brute force (G3, G4, G5).
//!
//! Both paths use every available core (brute force forks the simulator
//! profiler across workers; the guided engine shards candidate ranking),
//! so the ratio reflects the algorithmic gap — top-K profiling plus the
//! lower-bound prefilter versus profiling everything — not a threading
//! artefact. `FLASHFUSER_QUICK=1` restricts the run to G3 (the mode
//! `scripts/verify.sh` uses).

use flashfuser_bench::h100;
use flashfuser_core::{SearchConfig, SearchEngine};
use flashfuser_sim::SimProfiler;
use flashfuser_workloads::gemm_chains;
use std::time::Instant;

fn main() {
    let params = h100();
    let engine = SearchEngine::new(params.clone());
    let quick = std::env::var("FLASHFUSER_QUICK").is_ok_and(|v| v == "1");
    let ids: &[&str] = if quick { &["G3"] } else { &["G3", "G4", "G5"] };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== Table VIII: search time, engine (top-K=11) vs brute force ==");
    println!(
        "({threads} worker thread(s){})",
        if quick { ", quick mode" } else { "" }
    );
    println!(
        "{:<6}{:>14}{:>14}{:>10}{:>14}",
        "id", "brute s", "engine s", "speedup", "same plan?"
    );
    for w in gemm_chains().into_iter().filter(|w| ids.contains(&w.id)) {
        let config = SearchConfig::default();
        let t0 = Instant::now();
        let mut p1 = SimProfiler::new(params.clone());
        let (brute, profiled) = engine.brute_force(&w.chain, &config, &mut p1).unwrap();
        let brute_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut p2 = SimProfiler::new(params.clone());
        let guided = engine
            .search_with_profiler(&w.chain, &config, &mut p2)
            .unwrap();
        let engine_s = t1.elapsed().as_secs_f64();
        let same = (guided.best().measured.unwrap().seconds - brute.measured.unwrap().seconds)
            .abs()
            / brute.measured.unwrap().seconds
            < 0.02;
        println!(
            "{:<6}{brute_s:>14.2}{engine_s:>14.2}{:>9.1}x{:>14}",
            w.id,
            brute_s / engine_s,
            if same { "within 2%" } else { "no" }
        );
        eprintln!(
            "   ({} candidates brute-profiled; engine considered {}, prefiltered {})",
            profiled,
            guided.stats().considered,
            guided.stats().prefiltered
        );
    }
    println!("\npaper: 1.2-8.1 hr brute vs ~380 s engine (12-68x); wall-clock");
    println!("magnitudes differ (their profiling compiles + runs real kernels).");
}
