//! Extension study (paper §VI portability): primitive hop penalties on
//! a mesh interconnect vs the crossbar, justifying the shuffle-group
//! mapping proposed for Cerebras-class fabrics.

use flashfuser_comm::{DsmPrimitive, Topology};
use flashfuser_tensor::BinaryOp;

fn main() {
    println!("== Extension: mesh-vs-crossbar hop penalty per primitive ==");
    println!("{:<22}{:>8}{:>14}", "primitive", "group", "mesh penalty");
    for prim in [
        DsmPrimitive::Shuffle,
        DsmPrimitive::ReduceScatter,
        DsmPrimitive::AllExchange(BinaryOp::Add),
    ] {
        for g in [2usize, 4, 8, 16] {
            println!(
                "{:<22}{g:>8}{:>13.2}x",
                prim.mnemonic(),
                Topology::Mesh.penalty_vs_crossbar(prim, g)
            );
        }
    }
    println!("\nRing-based shuffle/reduce are topology-agnostic (1.0x);");
    println!("direct all-exchange degrades with group size on a mesh —");
    println!("hence the paper maps *shuffle groups* onto neighbouring cores.");
}
