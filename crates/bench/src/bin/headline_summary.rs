//! The paper's headline numbers: memory-access reduction, kernel
//! speedups vs the best library and best compiler, and E2E speedup.

use flashfuser_baselines::suite;
use flashfuser_bench::{geomean, h100, run_matrix};
use flashfuser_workloads::models::ModelSpec;
use flashfuser_workloads::{all_workloads, e2e_speedup};

fn main() {
    let params = h100();
    let systems = suite(&params);
    let names: Vec<&str> = systems.iter().map(|s| s.name()).collect();
    let ff = names.iter().position(|n| *n == "FlashFuser").unwrap();
    let workloads = all_workloads();
    let results = run_matrix(&workloads, &systems);

    let mut mem_reduction = vec![];
    let mut vs_best_library = vec![];
    let mut vs_best_compiler = vec![];
    let libraries = ["PyTorch", "TensorRT"];
    let compilers = ["Relay", "TASO", "BOLT", "Chimera", "MCFuser"];
    for row in &results {
        let f = &row[ff];
        let torch = row.iter().find(|r| r.name == "PyTorch").unwrap();
        mem_reduction.push(1.0 - f.global_bytes as f64 / torch.global_bytes as f64);
        let best = |set: &[&str]| {
            row.iter()
                .filter(|r| set.contains(&r.name))
                .map(|r| r.seconds)
                .fold(f64::INFINITY, f64::min)
        };
        vs_best_library.push(best(&libraries) / f.seconds);
        vs_best_compiler.push(best(&compilers) / f.seconds);
    }
    let avg_mem = 100.0 * mem_reduction.iter().sum::<f64>() / mem_reduction.len() as f64;
    println!("== Headline summary (26 subgraphs) ==");
    println!("memory-access reduction vs PyTorch: {avg_mem:.0}% (paper: 58%)");
    println!(
        "kernel speedup vs best library:     {:.2}x (paper: 3.3x)",
        geomean(vs_best_library)
    );
    println!(
        "kernel speedup vs best compiler:    {:.2}x (paper: 4.1x)",
        geomean(vs_best_compiler)
    );
    let mut e2e = vec![];
    for w in &workloads {
        let d = w.chain.dims();
        let model = ModelSpec {
            name: w.model,
            layers: 1,
            hidden: d.k,
            ffn_hidden: d.n,
            gated: w.chain.kind().is_gated(),
        };
        e2e.push(e2e_speedup(&model, 128, &params).speedup);
    }
    println!(
        "end-to-end speedup:                 {:.2}x (paper: 1.24x)",
        e2e.iter().sum::<f64>() / e2e.len() as f64
    );
}
