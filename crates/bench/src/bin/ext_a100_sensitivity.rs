//! Extension study: the same workloads on a simulated A100 (no DSM,
//! no clusters, no TMA atomics) vs the H100 — isolating how much of
//! FlashFuser's win is the inter-core connection itself.

use flashfuser_baselines::{Baseline, FlashFuserPolicy, PyTorchPolicy};
use flashfuser_core::MachineDescriptor;
use flashfuser_workloads::{gated_ffn_chains, gemm_chains};

fn main() {
    println!("== Extension: FlashFuser speedup over PyTorch, H100 vs A100 ==");
    println!("{:<6}{:>12}{:>12}", "id", "H100", "A100");
    let h100 = MachineDescriptor::h100_sxm();
    let a100 = MachineDescriptor::a100_sxm();
    let workloads: Vec<_> = gemm_chains()
        .into_iter()
        .chain(gated_ffn_chains())
        .filter(|w| ["G5", "G8", "S3"].contains(&w.id))
        .collect();
    for w in &workloads {
        let mut row = vec![];
        for params in [&h100, &a100] {
            let ff = FlashFuserPolicy::new(params.clone()).run(&w.chain);
            let torch = PyTorchPolicy::new(params.clone()).run(&w.chain);
            row.push(torch.seconds / ff.seconds);
        }
        println!("{:<6}{:>12.2}{:>12.2}", w.id, row[0], row[1]);
    }
    println!("\nWithout DSM (A100) the fused search cannot aggregate N-slices");
    println!("on-chip; large-intermediate fusion stops paying off.");
}
