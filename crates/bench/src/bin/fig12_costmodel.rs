//! Fig. 12: (a) cost-model validation on C3, C4, G4 — does the model's
//! pick land on the measured optimum? (b) top-K prediction accuracy.

use flashfuser_bench::h100;
use flashfuser_core::{SearchConfig, SearchEngine};
use flashfuser_sim::SimProfiler;
use flashfuser_workloads::{conv_chains, gemm_chains, Workload};

fn main() {
    let params = h100();
    let engine = SearchEngine::new(params.clone());

    println!("== Fig. 12(a): cost model picks vs measured TFLOPS ==");
    let named: Vec<Workload> = conv_chains()
        .into_iter()
        .chain(gemm_chains())
        .filter(|w| ["C3", "C4", "G4"].contains(&w.id))
        .collect();
    for w in &named {
        let config = SearchConfig {
            top_k: 15,
            ..SearchConfig::default()
        };
        let Ok(result) = engine.search(&w.chain, &config) else {
            println!("{}: no feasible plan (skipped)", w.id);
            continue;
        };
        let mut profiler = SimProfiler::new(params.clone());
        let flops = w.chain.total_flops();
        print!("{}: measured TFLOPS by est-rank:", w.id);
        let mut best = (0usize, 0.0f64);
        for (i, p) in result.top_k().iter().enumerate() {
            let t = flops as f64 / profiler.measure(p.analysis.plan()).seconds / 1e12;
            if t > best.1 {
                best = (i, t);
            }
            print!(" {t:.0}");
        }
        println!("  <- model pick = rank 0, true best = rank {}", best.0);
    }

    println!("\n== Fig. 12(b): top-N prediction accuracy (Tables V + VII) ==");
    let workloads: Vec<Workload> = conv_chains().into_iter().chain(gemm_chains()).collect();
    let mut per_workload: Vec<Vec<f64>> = vec![];
    for w in &workloads {
        let config = SearchConfig {
            top_k: 15,
            ..SearchConfig::default()
        };
        let Ok(result) = engine.search(&w.chain, &config) else {
            continue;
        };
        let mut profiler = SimProfiler::new(params.clone());
        let times: Vec<f64> = result
            .top_k()
            .iter()
            .map(|p| profiler.measure(p.analysis.plan()).seconds)
            .collect();
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        // accuracy(K) = best-within-top-K relative to best-within-top-15.
        let acc: Vec<f64> = (1..=15)
            .map(|k| {
                let topk = times[..k.min(times.len())]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                best / topk
            })
            .collect();
        per_workload.push(acc);
    }
    println!("{:<6}{:>12}", "K", "accuracy %");
    for k in 1..=15 {
        let avg: f64 =
            per_workload.iter().map(|a| a[k - 1]).sum::<f64>() / per_workload.len() as f64;
        println!("{k:<6}{:>11.2}%", 100.0 * avg);
    }
    println!("paper: accuracy reaches ~100% at K = 11 (the chosen top-K).");
}
