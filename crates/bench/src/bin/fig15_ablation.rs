//! Fig. 15: ablation of dsm_comm (DC), dataflow analyzer (DA) and the
//! search engine, averaged over C1-C8 and G1-G10.

use flashfuser_baselines::{run_ablation, AblationVariant};
use flashfuser_bench::{geomean, h100};
use flashfuser_workloads::{conv_chains, gemm_chains};

fn main() {
    let params = h100();
    let mut workloads = conv_chains();
    workloads.extend(gemm_chains());
    println!("== Fig. 15: ablation (speedup vs No Fusion) ==");
    print!("{:<6}", "id");
    for v in AblationVariant::ALL {
        print!("{:>12}", v.label());
    }
    println!();
    let mut per_variant: Vec<Vec<f64>> = vec![vec![]; AblationVariant::ALL.len()];
    for w in &workloads {
        let base = run_ablation(AblationVariant::NoFusion, &w.chain, &params).seconds;
        print!("{:<6}", w.id);
        for (i, v) in AblationVariant::ALL.iter().enumerate() {
            let s = base / run_ablation(*v, &w.chain, &params).seconds;
            per_variant[i].push(s);
            print!("{s:>12.2}");
        }
        println!();
    }
    print!("{:<6}", "geo");
    for v in &per_variant {
        print!("{:>12.2}", geomean(v.iter().copied()));
    }
    println!("\npaper averages: 1.00 / 1.52 / 2.11 / 3.29");
}
