//! Table I: percentage of execution time spent in FFN layers (seq 512).

use flashfuser_bench::h100;
use flashfuser_workloads::{ffn_time_share, model_zoo};

fn main() {
    let params = h100();
    println!("== Table I: FFN time share (seq = 512) ==");
    println!("{:<12}{:>12}{:>12}", "Model", "measured %", "paper %");
    let paper = [
        ("GPT-6.7B", 61.28),
        ("LLaMA-1B", 57.44),
        ("OPT-1.3B", 53.08),
        ("BERT", 47.03),
        ("GPT-2", 41.64),
    ];
    for model in model_zoo() {
        let share = 100.0 * ffn_time_share(&model, 512, &params);
        let reference = paper
            .iter()
            .find(|(n, _)| *n == model.name)
            .map_or(f64::NAN, |(_, v)| *v);
        println!("{:<12}{share:>11.2}{reference:>12.2}", model.name);
    }
}
