//! Fig. 16: (a) roofline of the large-model FFNs; (b) end-to-end speedup
//! as M grows (seq 256, batch 1..32).

use flashfuser_bench::h100;
use flashfuser_workloads::e2e_speedup;
use flashfuser_workloads::models::large_model_zoo;
use flashfuser_workloads::roofline::roofline_point;

fn main() {
    let params = h100();
    println!(
        "== Fig. 16(a): roofline (machine balance {:.0} FLOP/B) ==",
        params.machine_balance()
    );
    println!(
        "{:<14}{:>8}{:>14}{:>16}{:>10}",
        "model", "M", "intensity", "attainable TF", "bound"
    );
    for model in large_model_zoo() {
        for m in [256usize, 512, 1024, 2048, 4096, 8192] {
            let p = roofline_point(&model, m, &params);
            println!(
                "{:<14}{m:>8}{:>14.1}{:>16.0}{:>10}",
                model.name,
                p.intensity,
                p.attainable_tflops,
                if p.compute_bound { "compute" } else { "memory" }
            );
        }
    }
    println!("\n== Fig. 16(b): E2E speedup vs M (seq 256) ==");
    println!(
        "{:<14}{:>8}{:>14}{:>12}",
        "model", "M", "ffn speedup", "E2E"
    );
    let mut all = vec![];
    for model in large_model_zoo() {
        for batch in [1usize, 2, 4, 8, 16, 32] {
            let m = 256 * batch;
            let r = e2e_speedup(&model, m, &params);
            all.push(r.speedup);
            println!(
                "{:<14}{m:>8}{:>14.2}{:>12.3}",
                model.name, r.ffn_speedup, r.speedup
            );
        }
    }
    let avg = all.iter().sum::<f64>() / all.len() as f64;
    println!("average E2E speedup: {avg:.3} (paper: 1.16 for the large set)");
}
