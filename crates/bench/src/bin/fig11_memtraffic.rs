//! Fig. 11: global-memory traffic, FlashFuser vs no-fusion (PyTorch),
//! per workload — the paper reports PyTorch moving 2.4x more on average.

use flashfuser_baselines::{Baseline, FlashFuserPolicy, PyTorchPolicy};
use flashfuser_bench::{geomean, h100};
use flashfuser_workloads::{conv_chains, gemm_chains};

fn main() {
    let params = h100();
    let ff = FlashFuserPolicy::new(params.clone());
    let torch = PyTorchPolicy::new(params.clone());
    println!("== Fig. 11: global memory traffic (PyTorch / FlashFuser) ==");
    println!(
        "{:<6}{:>14}{:>14}{:>10}",
        "id", "torch MB", "ff MB", "ratio"
    );
    let mut ratios = vec![];
    let mut workloads = gemm_chains();
    workloads.extend(conv_chains());
    for w in &workloads {
        let t = torch.run(&w.chain);
        let f = ff.run(&w.chain);
        let ratio = t.global_bytes as f64 / f.global_bytes as f64;
        ratios.push(ratio);
        println!(
            "{:<6}{:>14.2}{:>14.2}{ratio:>10.2}",
            w.id,
            t.global_bytes as f64 / 1e6,
            f.global_bytes as f64 / 1e6
        );
    }
    println!("geomean ratio: {:.2} (paper avg: 2.4)", geomean(ratios));
}
