//! Search-engine throughput benchmark and `BENCH_search.json` emitter.
//!
//! Runs the guided search (Algorithm 2, top-K = 11) once on the
//! sequential path (`threads = 1`) and once on the parallel path
//! (`threads = 0`, every available core) for each Table VIII chain,
//! verifies the two runs produce identical winning plans and top-K
//! orders, and writes a machine-readable record so future changes have a
//! perf trajectory to regress against:
//!
//! * per chain: candidates enumerated / considered / feasible /
//!   prefiltered, candidates per second, sequential vs parallel
//!   wall-clock and the resulting speedup;
//! * plus the host's thread count, so numbers from different machines
//!   are comparable.
//!
//! `FLASHFUSER_QUICK=1` restricts the run to the smallest chain (G3) —
//! the mode `scripts/verify.sh` uses — and writes to
//! `BENCH_search.quick.json` (untracked) so a verify run never clobbers
//! the committed full-run baseline.

use flashfuser_bench::{env_threads, h100, quick_mode};
use flashfuser_core::{LoopSchedule, SearchConfig, SearchEngine, SearchResult, SearchStats};
use flashfuser_sim::SimProfiler;
use flashfuser_workloads::gemm_chains;
use std::time::Instant;

struct ChainRecord {
    id: &'static str,
    candidates: u64,
    seq_stats: SearchStats,
    par_stats: SearchStats,
    seq_wall_s: f64,
    par_wall_s: f64,
    identical: bool,
    winner: String,
}

fn run_once(
    engine: &SearchEngine,
    chain: &flashfuser_graph::ChainSpec,
    threads: usize,
) -> (SearchResult, f64) {
    let params = engine.params().clone();
    let config = SearchConfig::default().with_threads(threads);
    let mut profiler = SimProfiler::new(params);
    let t0 = Instant::now();
    let result = engine
        .search_with_profiler(chain, &config, &mut profiler)
        .expect("Table VIII chains always have feasible plans");
    (result, t0.elapsed().as_secs_f64())
}

fn identical_top_k(a: &SearchResult, b: &SearchResult) -> bool {
    a.best_index() == b.best_index()
        && a.top_k().len() == b.top_k().len()
        && a.top_k().iter().zip(b.top_k()).all(|(x, y)| {
            x.est_seconds == y.est_seconds
                && x.analysis.plan().summary() == y.analysis.plan().summary()
        })
}

fn json_record(r: &ChainRecord) -> String {
    format!(
        concat!(
            "    {{\"id\": \"{}\", \"candidates\": {}, \"considered\": {}, ",
            "\"feasible\": {}, \"prefiltered\": {}, ",
            "\"seq_wall_s\": {:.6}, \"par_wall_s\": {:.6}, \"speedup\": {:.3}, ",
            "\"seq_candidates_per_s\": {:.0}, \"par_candidates_per_s\": {:.0}, ",
            "\"par_threads\": {}, \"identical_top_k\": {}, \"winner\": \"{}\"}}"
        ),
        r.id,
        r.candidates,
        r.par_stats.considered,
        r.par_stats.feasible,
        r.par_stats.prefiltered,
        r.seq_wall_s,
        r.par_wall_s,
        r.seq_wall_s / r.par_wall_s,
        r.seq_stats.candidates_per_second(),
        r.par_stats.candidates_per_second(),
        r.par_stats.threads,
        r.identical,
        r.winner,
    )
}

fn main() {
    let params = h100();
    let engine = SearchEngine::new(params.clone());
    let quick = quick_mode();
    let ids: &[&str] = if quick { &["G3"] } else { &["G3", "G4", "G5"] };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let all = LoopSchedule::enumerate_all();

    println!("== search-engine throughput: sequential vs parallel guided search ==");
    println!(
        "host threads: {host_threads}{}",
        if quick { " (quick mode)" } else { "" }
    );
    println!(
        "{:<6}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}{:>12}",
        "id", "candidates", "feasible", "prefiltered", "seq s", "par s", "speedup", "cand/s(par)"
    );

    let mut records = Vec::new();
    for w in gemm_chains().into_iter().filter(|w| ids.contains(&w.id)) {
        let stream =
            flashfuser_core::CandidateStream::build(&w.chain, &SearchConfig::default().prune, &all);
        let candidates = stream.len();
        let (seq, seq_wall_s) = run_once(&engine, &w.chain, 1);
        // FLASHFUSER_THREADS pins the parallel run; 0 = all cores.
        let (par, par_wall_s) = run_once(&engine, &w.chain, env_threads());
        let identical = identical_top_k(&seq, &par);
        assert!(
            identical,
            "{}: parallel top-K diverged from sequential — determinism bug",
            w.id
        );
        let record = ChainRecord {
            id: w.id,
            candidates,
            seq_stats: seq.stats(),
            par_stats: par.stats(),
            seq_wall_s,
            par_wall_s,
            identical,
            winner: par.best().analysis.plan().summary(),
        };
        println!(
            "{:<6}{:>12}{:>12}{:>12}{:>12.3}{:>12.3}{:>9.2}x{:>12.0}",
            record.id,
            record.candidates,
            record.par_stats.feasible,
            record.par_stats.prefiltered,
            record.seq_wall_s,
            record.par_wall_s,
            record.seq_wall_s / record.par_wall_s,
            record.par_stats.candidates_per_second(),
        );
        records.push(record);
    }

    let body: Vec<String> = records.iter().map(json_record).collect();
    let json = format!(
        "{{\n  \"bench\": \"search\",\n  \"host_threads\": {},\n  \"quick\": {},\n  \"chains\": [\n{}\n  ]\n}}\n",
        host_threads,
        quick,
        body.join(",\n")
    );
    // Quick mode must not overwrite the committed full-run baseline.
    let path = if quick {
        "BENCH_search.quick.json"
    } else {
        "BENCH_search.json"
    };
    std::fs::write(path, &json).expect("writing the benchmark record");
    println!("\nwrote {path}");
    if host_threads >= 4 {
        let worst = records
            .iter()
            .map(|r| r.seq_wall_s / r.par_wall_s)
            .fold(f64::INFINITY, f64::min);
        println!("worst-case parallel speedup on this {host_threads}-core host: {worst:.2}x");
    } else {
        println!("(host has {host_threads} core(s); parallel speedup needs a multi-core host)");
    }
}
