//! Fig. 8: tile graphs of standard and gated FFN under one cluster.

use flashfuser_graph::chain::ChainKind;
use flashfuser_graph::TileGraph;
use flashfuser_tensor::Activation;

fn main() {
    println!("== Fig. 8(a): standard FFN, cls (m,n,k,l) = (1,2,2,2) ==");
    let std = TileGraph::expand(
        ChainKind::StandardFfn {
            activation: Activation::Relu,
        },
        1,
        2,
        2,
        2,
    );
    println!("{std}");
    println!("== Fig. 8(b): gated FFN, same cluster ==");
    let gated = TileGraph::expand(
        ChainKind::GatedFfn {
            activation: Activation::Silu,
        },
        1,
        2,
        2,
        2,
    );
    println!("{gated}");
}
