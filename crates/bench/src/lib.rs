//! Shared helpers for the table/figure report binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper and prints the same rows/series the paper reports, in plain
//! text. Absolute numbers come from the machine model, so only the
//! *shape* (who wins, by what rough factor, where fusion fails) is
//! comparable with the paper — EXPERIMENTS.md records both sides.

use flashfuser_baselines::{Baseline, BaselineResult};
use flashfuser_core::MachineDescriptor;
use flashfuser_workloads::Workload;

/// Runs every system of `suite` on every workload, returning
/// `results[workload][system]`.
pub fn run_matrix(workloads: &[Workload], suite: &[Box<dyn Baseline>]) -> Vec<Vec<BaselineResult>> {
    workloads
        .iter()
        .map(|w| suite.iter().map(|s| s.run(&w.chain)).collect())
        .collect()
}

/// Prints a speedup table normalised to the `norm_idx`-th system
/// (PyTorch in the paper's Fig. 10), one row per workload plus a
/// geometric-mean row.
pub fn print_speedup_table(
    title: &str,
    workloads: &[Workload],
    systems: &[&str],
    results: &[Vec<BaselineResult>],
    norm_idx: usize,
) {
    println!("== {title} (speedup vs {}) ==", systems[norm_idx]);
    print!("{:<6}", "id");
    for s in systems {
        print!("{s:>14}");
    }
    println!();
    let mut geo = vec![0.0f64; systems.len()];
    for (w, row) in workloads.iter().zip(results) {
        print!("{:<6}", w.id);
        let norm = row[norm_idx].seconds;
        for (i, r) in row.iter().enumerate() {
            let s = norm / r.seconds;
            geo[i] += s.ln();
            print!("{s:>14.2}");
        }
        println!();
    }
    print!("{:<6}", "geo");
    for g in &geo {
        print!("{:>14.2}", (g / results.len() as f64).exp());
    }
    println!();
}

/// Geometric mean of an iterator of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (sum / n as f64).exp()
}

/// The default evaluation machine.
pub fn h100() -> MachineDescriptor {
    MachineDescriptor::h100_sxm()
}

/// `true` when `FLASHFUSER_QUICK=1`: benches restrict themselves to the
/// smallest chain and write to `*.quick.json` (the verify-gate mode).
pub fn quick_mode() -> bool {
    std::env::var("FLASHFUSER_QUICK").is_ok_and(|v| v == "1")
}

/// The worker-thread override from `FLASHFUSER_THREADS`, or `0` (all
/// cores) when unset/unparseable. Honored by the bench bins so CI and
/// operators can pin parallelism without editing code; search results
/// are identical for every value.
pub fn env_threads() -> usize {
    std::env::var("FLASHFUSER_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }
}
