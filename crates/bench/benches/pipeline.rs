//! Criterion micro-benchmarks of the compiler pipeline itself: the
//! dataflow analyzer, the full search, and the functional interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashfuser_comm::ClusterShape;
use flashfuser_core::{
    BlockTile, DataflowAnalyzer, LoopSchedule, MachineParams, SearchConfig, SearchEngine,
};
use flashfuser_graph::{ChainSpec, Dim};
use flashfuser_sim::{execute_fused, SimProfiler, TrafficCounters};
use flashfuser_tensor::Activation;
use std::hint::black_box;

fn bench_analyzer(c: &mut Criterion) {
    let chain = ChainSpec::standard_ffn(128, 8192, 2048, 2048, Activation::Relu);
    let schedule = LoopSchedule::new(vec![Dim::M], vec![Dim::N, Dim::L, Dim::K]);
    let cluster = ClusterShape::new(1, 4, 2, 8).unwrap();
    let tile = BlockTile::new(128, 128, 64, 128);
    let analyzer = DataflowAnalyzer::new(MachineParams::h100_sxm());
    c.bench_function("dataflow_analyzer/opt1.3b", |b| {
        b.iter(|| {
            black_box(
                analyzer
                    .analyze(black_box(&chain), &schedule, cluster, tile)
                    .unwrap(),
            )
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let params = MachineParams::h100_sxm();
    let engine = SearchEngine::new(params.clone());
    let mut group = c.benchmark_group("search_engine");
    group.sample_size(10);
    for (name, n, k) in [("small", 512usize, 256usize), ("g8", 8192, 2048)] {
        let chain = ChainSpec::standard_ffn(128, n, k, k, Activation::Relu);
        group.bench_with_input(BenchmarkId::from_parameter(name), &chain, |b, chain| {
            b.iter(|| {
                let mut profiler = SimProfiler::new(params.clone());
                black_box(
                    engine
                        .search_with_profiler(chain, &SearchConfig::default(), &mut profiler)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let chain = ChainSpec::standard_ffn(32, 128, 64, 128, Activation::Relu);
    let schedule = LoopSchedule::new(vec![Dim::M], vec![Dim::N, Dim::L, Dim::K]);
    let cluster = ClusterShape::new(1, 4, 2, 4).unwrap();
    let tile = BlockTile::new(16, 16, 16, 16);
    let plan = DataflowAnalyzer::new(MachineParams::h100_sxm())
        .analyze(&chain, &schedule, cluster, tile)
        .unwrap()
        .plan()
        .clone();
    let inputs = chain.make_inputs(1);
    c.bench_function("functional_interpreter/32x128x64x128", |b| {
        b.iter(|| {
            let mut counters = TrafficCounters::new();
            black_box(execute_fused(&plan, &inputs, &mut counters).unwrap())
        })
    });
}

criterion_group!(benches, bench_analyzer, bench_search, bench_interpreter);
criterion_main!(benches);
