//! Micro-benchmarks of the compiler pipeline itself: the dataflow
//! analyzer, the full search, and the functional interpreter.
//!
//! A self-contained `harness = false` timing loop (median of repeated
//! batches over `std::time::Instant`) replaces an external benchmark
//! framework so the workspace builds offline. Invoke with
//! `cargo bench -p flashfuser-bench`.

use flashfuser_comm::ClusterShape;
use flashfuser_core::{
    BlockTile, DataflowAnalyzer, LoopSchedule, MachineDescriptor, SearchConfig, SearchEngine,
};
use flashfuser_graph::{ChainSpec, Dim};
use flashfuser_sim::{execute_fused, SimProfiler, TrafficCounters};
use flashfuser_tensor::Activation;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` in batches of `batch` calls, returning the median
/// per-call seconds over `rounds` batches.
fn time_it<T>(rounds: usize, batch: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn report(name: &str, per_call_s: f64) {
    if per_call_s >= 1e-3 {
        println!("{name:<44} {:>10.3} ms/iter", per_call_s * 1e3);
    } else {
        println!("{name:<44} {:>10.3} us/iter", per_call_s * 1e6);
    }
}

fn bench_analyzer() {
    let chain = ChainSpec::standard_ffn(128, 8192, 2048, 2048, Activation::Relu);
    let schedule = LoopSchedule::new(vec![Dim::M], vec![Dim::N, Dim::L, Dim::K]);
    let cluster = ClusterShape::new(1, 4, 2, 8).unwrap();
    let tile = BlockTile::new(128, 128, 64, 128);
    let analyzer = DataflowAnalyzer::new(MachineDescriptor::h100_sxm());
    let t = time_it(20, 200, || {
        analyzer
            .analyze(black_box(&chain), &schedule, cluster, tile)
            .unwrap()
    });
    report("dataflow_analyzer/opt1.3b", t);
}

fn bench_search() {
    let params = MachineDescriptor::h100_sxm();
    let engine = SearchEngine::new(params.clone());
    for (name, n, k, rounds) in [("small", 512usize, 256usize, 10), ("g8", 8192, 2048, 5)] {
        let chain = ChainSpec::standard_ffn(128, n, k, k, Activation::Relu);
        let t = time_it(rounds, 1, || {
            let mut profiler = SimProfiler::new(params.clone());
            engine
                .search_with_profiler(black_box(&chain), &SearchConfig::default(), &mut profiler)
                .unwrap()
        });
        report(&format!("search_engine/{name}"), t);
    }
}

fn bench_interpreter() {
    let chain = ChainSpec::standard_ffn(32, 128, 64, 128, Activation::Relu);
    let schedule = LoopSchedule::new(vec![Dim::M], vec![Dim::N, Dim::L, Dim::K]);
    let cluster = ClusterShape::new(1, 4, 2, 4).unwrap();
    let tile = BlockTile::new(16, 16, 16, 16);
    let plan = DataflowAnalyzer::new(MachineDescriptor::h100_sxm())
        .analyze(&chain, &schedule, cluster, tile)
        .unwrap()
        .plan()
        .clone();
    let inputs = chain.make_inputs(1);
    let t = time_it(10, 5, || {
        let mut counters = TrafficCounters::new();
        execute_fused(&plan, &inputs, &mut counters).unwrap()
    });
    report("functional_interpreter/32x128x64x128", t);
}

fn main() {
    println!("== flashfuser pipeline micro-benchmarks (median per call) ==");
    bench_analyzer();
    bench_search();
    bench_interpreter();
}
