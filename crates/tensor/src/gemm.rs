//! Reference GEMM kernels.
//!
//! These define the ground-truth numerics for every fused plan the
//! simulator executes: a fused two-GEMM chain must reproduce
//! `activation(A×B) × D` exactly as computed by the functions here.
//! The `_with` variants dispatch through a pluggable
//! [`MicroKernel`] backend; the plain
//! functions are the naive oracle path.

use crate::error::ShapeError;
use crate::kernel::{BlockedKernel, MicroKernel};
use crate::matrix::Matrix;

/// Computes `A × B`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::{Matrix, gemm};
///
/// let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
/// let c = gemm::matmul(&a, &b).unwrap();
/// assert_eq!(c[(0, 0)], 0.0 * 0.0 + 1.0 * 2.0 + 2.0 * 4.0);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_accumulate(&mut c, a, b)?;
    Ok(c)
}

/// Computes `A × B` with the selected [`MicroKernel`] backend.
///
/// # Errors
///
/// Returns [`ShapeError`] if `A.cols() != B.rows()`.
pub fn matmul_with(kernel: &dyn MicroKernel, a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    kernel.gemm(&mut c, a, b)?;
    Ok(c)
}

/// Computes `C += A × B` in place.
///
/// This is the accumulation step a single simulated thread block performs
/// on its tile, and the building block of the partial-sum dataflow in the
/// paper's Figure 8 (`E_0_0(0) + E_0_0(1) -> E_0_0`).
///
/// The loop body is branch-free: runtime is a function of shape alone,
/// never of input values, so benchmarks against it measure the kernel
/// and not the sparsity of its operands.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are incompatible.
pub fn matmul_accumulate(c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<(), ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_accumulate", a.shape(), b.shape()));
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(ShapeError::new(
            "matmul_accumulate",
            c.shape(),
            (a.rows(), b.cols()),
        ));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let c_s = c.as_mut_slice();
    // i-k-j loop order keeps the inner loop contiguous in both B and C.
    for i in 0..m {
        for p in 0..k {
            let a_ip = a_s[i * k + p];
            let b_row = &b_s[p * n..(p + 1) * n];
            let c_row = &mut c_s[i * n..(i + 1) * n];
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
    Ok(())
}

/// Computes `C += A × B` with the selected [`MicroKernel`] backend.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are incompatible.
pub fn matmul_accumulate_with(
    kernel: &dyn MicroKernel,
    c: &mut Matrix,
    a: &Matrix,
    b: &Matrix,
) -> Result<(), ShapeError> {
    kernel.gemm(c, a, b)
}

/// Computes `A × B` through the packed blocked kernel with a uniform
/// `block × block × block` cache blocking.
///
/// Functionally identical to [`matmul`] (up to floating-point association);
/// always takes the packed path, whatever the shape, so tests can confirm
/// that packing, blocking and ragged-edge handling never change results
/// beyond accumulation-order noise.
///
/// # Errors
///
/// Returns [`ShapeError`] if `A.cols() != B.rows()`.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Result<Matrix, ShapeError> {
    assert!(block > 0, "block size must be positive");
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_blocked", a.shape(), b.shape()));
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    BlockedKernel::with_blocks(block, block, block).gemm_packed(&mut c, a, b, None);
    Ok(c)
}

/// FLOP count of a single `m x k` × `k x n` GEMM (multiply + add).
pub fn gemm_flops(m: u64, n: u64, k: u64) -> u64 {
    2 * m * n * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelKind, NaiveKernel};
    use crate::rng::seeded_matrix;

    #[test]
    fn matmul_identity_is_noop() {
        let a = seeded_matrix(7, 5, 1);
        let c = matmul(&a, &Matrix::identity(5)).unwrap();
        assert!(a.approx_eq(&c, 0.0).unwrap());
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matmul(&a, &b).is_err());
        for kind in KernelKind::all() {
            assert!(matmul_with(kind.kernel(), &a, &b).is_err());
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0);
        matmul_accumulate(&mut c, &a, &b).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn accumulate_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(matmul_accumulate(&mut c, &a, &b).is_err());
    }

    #[test]
    fn with_naive_kernel_is_bit_identical_to_plain_matmul() {
        let a = seeded_matrix(9, 14, 5);
        let b = seeded_matrix(14, 6, 6);
        let plain = matmul(&a, &b).unwrap();
        let routed = matmul_with(&NaiveKernel, &a, &b).unwrap();
        assert_eq!(plain.as_slice(), routed.as_slice());
    }

    #[test]
    fn all_zero_rows_still_produce_exact_results() {
        // Regression for the removed `if a_ip == 0.0 { continue; }`
        // branch: rows of zeros must contribute exactly nothing, and
        // pre-existing accumulator contents must survive untouched.
        let a = Matrix::from_fn(5, 7, |r, c| {
            if r == 2 {
                0.0
            } else {
                (r * 7 + c) as f32 * 0.25 - 3.0
            }
        });
        let b = seeded_matrix(7, 4, 4);
        let c = matmul(&a, &b).unwrap();
        for j in 0..4 {
            assert_eq!(c[(2, j)], 0.0);
        }
        let mut acc = Matrix::from_fn(5, 4, |_, _| 10.0);
        matmul_accumulate(&mut acc, &a, &b).unwrap();
        for j in 0..4 {
            assert_eq!(acc[(2, j)], 10.0);
        }
    }

    #[test]
    fn blocked_matches_naive_for_various_blocks() {
        let a = seeded_matrix(13, 9, 7);
        let b = seeded_matrix(9, 11, 8);
        let reference = matmul(&a, &b).unwrap();
        for block in [1, 2, 3, 4, 5, 8, 16, 64] {
            let c = matmul_blocked(&a, &b, block).unwrap();
            assert!(
                reference.approx_eq(&c, 1e-5).unwrap(),
                "block={block} diverged: {}",
                reference.max_abs_diff(&c).unwrap()
            );
        }
    }

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(128, 256, 64), 2 * 128 * 256 * 64);
    }
}
