//! Reference GEMM kernels.
//!
//! These define the ground-truth numerics for every fused plan the
//! simulator executes: a fused two-GEMM chain must reproduce
//! `activation(A×B) × D` exactly as computed by the functions here.

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// Computes `A × B`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::{Matrix, gemm};
///
/// let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
/// let c = gemm::matmul(&a, &b).unwrap();
/// assert_eq!(c[(0, 0)], 0.0 * 0.0 + 1.0 * 2.0 + 2.0 * 4.0);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_accumulate(&mut c, a, b)?;
    Ok(c)
}

/// Computes `C += A × B` in place.
///
/// This is the accumulation step a single simulated thread block performs
/// on its tile, and the building block of the partial-sum dataflow in the
/// paper's Figure 8 (`E_0_0(0) + E_0_0(1) -> E_0_0`).
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are incompatible.
pub fn matmul_accumulate(c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<(), ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_accumulate", a.shape(), b.shape()));
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(ShapeError::new(
            "matmul_accumulate",
            c.shape(),
            (a.rows(), b.cols()),
        ));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let c_s = c.as_mut_slice();
    // i-k-j loop order keeps the inner loop contiguous in both B and C.
    for i in 0..m {
        for p in 0..k {
            let a_ip = a_s[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b_s[p * n..(p + 1) * n];
            let c_row = &mut c_s[i * n..(i + 1) * n];
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
    Ok(())
}

/// Computes `A × B` with an explicitly blocked loop nest.
///
/// Functionally identical to [`matmul`] (up to floating-point association)
/// but iterates in `block`-sized tiles, mirroring how the simulated kernels
/// traverse the problem. Used by tests to confirm that blocking never
/// changes results beyond accumulation-order noise.
///
/// # Errors
///
/// Returns [`ShapeError`] if `A.cols() != B.rows()`.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Result<Matrix, ShapeError> {
    assert!(block > 0, "block size must be positive");
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_blocked", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let mut i0 = 0;
    while i0 < m {
        let ib = block.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jb = block.min(n - j0);
            let mut acc = Matrix::zeros(ib, jb);
            let mut p0 = 0;
            while p0 < k {
                let pb = block.min(k - p0);
                let at = a.tile(i0, p0, ib, pb)?;
                let bt = b.tile(p0, j0, pb, jb)?;
                matmul_accumulate(&mut acc, &at, &bt)?;
                p0 += pb;
            }
            c.set_tile(i0, j0, &acc)?;
            j0 += jb;
        }
        i0 += ib;
    }
    Ok(c)
}

/// FLOP count of a single `m x k` × `k x n` GEMM (multiply + add).
pub fn gemm_flops(m: u64, n: u64, k: u64) -> u64 {
    2 * m * n * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_matrix;

    #[test]
    fn matmul_identity_is_noop() {
        let a = seeded_matrix(7, 5, 1);
        let c = matmul(&a, &Matrix::identity(5)).unwrap();
        assert!(a.approx_eq(&c, 0.0).unwrap());
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0);
        matmul_accumulate(&mut c, &a, &b).unwrap();
        assert_eq!(c.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn accumulate_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(matmul_accumulate(&mut c, &a, &b).is_err());
    }

    #[test]
    fn blocked_matches_naive_for_various_blocks() {
        let a = seeded_matrix(13, 9, 7);
        let b = seeded_matrix(9, 11, 8);
        let reference = matmul(&a, &b).unwrap();
        for block in [1, 2, 3, 4, 5, 8, 16, 64] {
            let c = matmul_blocked(&a, &b, block).unwrap();
            assert!(
                reference.approx_eq(&c, 1e-5).unwrap(),
                "block={block} diverged: {}",
                reference.max_abs_diff(&c).unwrap()
            );
        }
    }

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(128, 256, 64), 2 * 128 * 256 * 64);
    }
}
