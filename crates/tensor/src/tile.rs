//! Tile-grid bookkeeping.
//!
//! [`TileGrid`] describes how one matrix dimension pair is cut into
//! fixed-size tiles, and provides the iteration and byte-accounting helpers
//! the dataflow analyzer and the simulator share. The paper's tile
//! coordinates (`B_0_1`, `C_0_0(1)`, ... in Fig. 8) map directly onto
//! [`TileGrid::offset`] results.

use crate::error::ShapeError;

/// A partition of a `rows x cols` matrix into `tile_rows x tile_cols`
/// tiles.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::TileGrid;
///
/// let g = TileGrid::new(256, 512, 128, 128).unwrap();
/// assert_eq!(g.tiles_per_row(), 4);
/// assert_eq!(g.tiles_per_col(), 2);
/// assert_eq!(g.num_tiles(), 8);
/// assert_eq!(g.offset(1, 2), (128, 256));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
}

impl TileGrid {
    /// Creates a tile grid.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tile sizes are zero or do not evenly
    /// divide the matrix — the paper's pruning Rule 1 guarantees the search
    /// only ever instantiates divisible tilings, and the grid enforces it.
    pub fn new(
        rows: usize,
        cols: usize,
        tile_rows: usize,
        tile_cols: usize,
    ) -> Result<Self, ShapeError> {
        if tile_rows == 0
            || tile_cols == 0
            || !rows.is_multiple_of(tile_rows)
            || !cols.is_multiple_of(tile_cols)
            || rows == 0
            || cols == 0
        {
            return Err(ShapeError::new(
                "tile_grid",
                (rows, cols),
                (tile_rows, tile_cols),
            ));
        }
        Ok(Self {
            rows,
            cols,
            tile_rows,
            tile_cols,
        })
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile height.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile width.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of tiles along the column axis (tiles in one row of tiles).
    pub fn tiles_per_row(&self) -> usize {
        self.cols / self.tile_cols
    }

    /// Number of tiles along the row axis.
    pub fn tiles_per_col(&self) -> usize {
        self.rows / self.tile_rows
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles_per_row() * self.tiles_per_col()
    }

    /// Element offset `(row0, col0)` of tile `(tr, tc)`.
    ///
    /// # Panics
    ///
    /// Panics if the tile coordinate is out of range.
    pub fn offset(&self, tr: usize, tc: usize) -> (usize, usize) {
        assert!(
            tr < self.tiles_per_col() && tc < self.tiles_per_row(),
            "tile coordinate ({tr},{tc}) out of range"
        );
        (tr * self.tile_rows, tc * self.tile_cols)
    }

    /// Elements per tile.
    pub fn tile_elems(&self) -> usize {
        self.tile_rows * self.tile_cols
    }

    /// Bytes per tile at `f16` width (2 bytes/element), the accounting unit
    /// used throughout the simulator.
    pub fn tile_bytes_f16(&self) -> u64 {
        (self.tile_elems() as u64) * 2
    }

    /// Iterates over all tile coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let per_row = self.tiles_per_row();
        (0..self.num_tiles()).map(move |i| (i / per_row, i % per_row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = TileGrid::new(128, 8192, 128, 128).unwrap();
        assert_eq!(g.tiles_per_col(), 1);
        assert_eq!(g.tiles_per_row(), 64);
        assert_eq!(g.num_tiles(), 64);
        assert_eq!(g.tile_elems(), 16384);
        assert_eq!(g.tile_bytes_f16(), 32768);
    }

    #[test]
    fn non_divisible_rejected() {
        assert!(TileGrid::new(100, 100, 32, 32).is_err());
        assert!(TileGrid::new(128, 128, 0, 32).is_err());
        assert!(TileGrid::new(0, 128, 16, 32).is_err());
    }

    #[test]
    fn offsets_row_major() {
        let g = TileGrid::new(64, 64, 16, 32).unwrap();
        assert_eq!(g.offset(0, 0), (0, 0));
        assert_eq!(g.offset(3, 1), (48, 32));
        let coords: Vec<_> = g.iter().collect();
        assert_eq!(coords.len(), 8);
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[1], (0, 1));
        assert_eq!(coords[2], (1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_out_of_range_panics() {
        let g = TileGrid::new(64, 64, 32, 32).unwrap();
        g.offset(2, 0);
    }
}
