//! Pluggable GEMM numeric backends.
//!
//! Every numeric path in the repository — the graph interpreter, the
//! fused/unfused executors and `validate_graph` — bottoms out in a
//! matrix multiply. [`MicroKernel`] abstracts that inner kernel so the
//! whole stack can select, explicitly and deterministically, between:
//!
//! * [`NaiveKernel`] — the scalar i-k-j reference loop from
//!   [`crate::gemm::matmul_accumulate`]. It stays the repository's
//!   numeric oracle: simple enough to audit by eye, with a fixed
//!   accumulation order that defines "ground truth" for every
//!   differential check.
//! * [`BlockedKernel`] — a cache-blocked, packed GEMM in the BLIS
//!   style: A and B are repacked into contiguous micro-panels sized
//!   for L1/L2, and an unrolled [`MR`]×[`NR`] register-blocked
//!   micro-tile does the arithmetic. The inner loops are plain safe
//!   Rust over fixed-size arrays, written so rustc/LLVM autovectorizes
//!   them — no `unsafe`, no intrinsics.
//!
//! Selection is threaded through call sites as a [`NumericConfig`];
//! there is intentionally no CPU sniffing or runtime dispatch by
//! hardware feature, so a given (seed, config) pair reproduces
//! bit-identical outputs on every run.

use crate::activation::Activation;
use crate::error::ShapeError;
use crate::gemm;
use crate::matrix::Matrix;

/// Rows of the register-blocked micro-tile.
pub const MR: usize = 8;
/// Columns of the register-blocked micro-tile.
pub const NR: usize = 32;

/// Default M-panel height (A block resident in L2).
const DEFAULT_MC: usize = 256;
/// Default K-panel depth (one A micro-panel + one B micro-panel fit in L1:
/// `(MR + NR) * KC * 4` bytes = 40 KiB).
const DEFAULT_KC: usize = 256;
/// Default N-panel width (packed B block resident in L2/L3).
const DEFAULT_NC: usize = 1024;

/// Below this FLOP count the packed path's setup (buffer allocation and
/// panel packing) costs more than it saves, so [`BlockedKernel::gemm`]
/// falls back to the naive loop. The cutoff is a fixed constant — part
/// of the kernel's deterministic definition, not a tuning knob.
const NAIVE_CUTOFF_FLOPS: u64 = 2 * 32 * 32 * 32;

/// A GEMM backend with accumulate semantics: `C += A × B`.
///
/// Implementations must be deterministic — a fixed accumulation order,
/// independent of input values and of the host CPU — so that seeded
/// experiments reproduce bit-for-bit.
pub trait MicroKernel: std::fmt::Debug + Send + Sync {
    /// Stable identifier used in benches, fuzz reports and CLI flags.
    fn name(&self) -> &'static str;

    /// Computes `C += A × B`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `A.cols() != B.rows()` or `C` is not
    /// `A.rows() × B.cols()`.
    fn gemm(&self, c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<(), ShapeError>;

    /// Computes `C = act(C + A × B)`, the fused-epilogue form.
    ///
    /// The default applies the activation as a separate pass after
    /// [`MicroKernel::gemm`]; kernels may override it to apply the
    /// epilogue while output blocks are still cache-resident.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] under the same conditions as
    /// [`MicroKernel::gemm`].
    fn gemm_epilogue(
        &self,
        c: &mut Matrix,
        a: &Matrix,
        b: &Matrix,
        act: Activation,
    ) -> Result<(), ShapeError> {
        self.gemm(c, a, b)?;
        act.apply_inplace(c);
        Ok(())
    }
}

/// The scalar i-k-j reference loop — the repository's numeric oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NaiveKernel;

impl MicroKernel for NaiveKernel {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn gemm(&self, c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<(), ShapeError> {
        gemm::matmul_accumulate(c, a, b)
    }
}

/// Cache-blocked, packed GEMM with an autovectorized micro-tile.
///
/// The loop nest follows the classic BLIS decomposition: N is split
/// into `nc`-wide column strips, K into `kc`-deep slabs, M into
/// `mc`-tall row blocks. Within a block, B is packed into [`NR`]-wide
/// row panels and A into [`MR`]-tall column panels (both zero-padded
/// at ragged edges), and an [`MR`]×[`NR`] register-blocked micro-tile
/// accumulates over the K slab before being added back into `C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockedKernel {
    mc: usize,
    kc: usize,
    nc: usize,
}

impl Default for BlockedKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockedKernel {
    /// The default cache-sized blocking.
    pub const fn new() -> Self {
        Self {
            mc: DEFAULT_MC,
            kc: DEFAULT_KC,
            nc: DEFAULT_NC,
        }
    }

    /// Custom blocking, used by [`crate::gemm::matmul_blocked`] and by
    /// tests that sweep degenerate block shapes.
    ///
    /// # Panics
    ///
    /// Panics if any block extent is zero.
    pub fn with_blocks(mc: usize, kc: usize, nc: usize) -> Self {
        assert!(mc > 0 && kc > 0 && nc > 0, "block extents must be positive");
        Self { mc, kc, nc }
    }

    /// The packed loop nest. Shapes must already be validated.
    ///
    /// When `epi` is set, the activation is applied to each completed
    /// `nc`-wide column strip of `C` right after its final K slab, while
    /// the strip is still cache-warm.
    pub(crate) fn gemm_packed(
        &self,
        c: &mut Matrix,
        a: &Matrix,
        b: &Matrix,
        epi: Option<Activation>,
    ) {
        let (m, k) = a.shape();
        let n = b.cols();
        if m == 0 || n == 0 {
            return;
        }
        let a_s = a.as_slice();
        let b_s = b.as_slice();
        let c_s = c.as_mut_slice();
        let mc = self.mc.min(m.next_multiple_of(MR));
        let kc = self.kc.min(k.max(1));
        let nc = self.nc.min(n.next_multiple_of(NR));
        let mut ap = vec![0.0f32; mc.next_multiple_of(MR) * kc];
        let mut bp = vec![0.0f32; kc * nc.next_multiple_of(NR)];
        let mut jc = 0;
        while jc < n {
            let nc_eff = nc.min(n - jc);
            let n_panels = nc_eff.div_ceil(NR);
            let mut pc = 0;
            while pc < k {
                let kc_eff = kc.min(k - pc);
                pack_b(&mut bp, b_s, n, pc, jc, kc_eff, nc_eff);
                let mut ic = 0;
                while ic < m {
                    let mc_eff = mc.min(m - ic);
                    let m_panels = mc_eff.div_ceil(MR);
                    pack_a(&mut ap, a_s, k, ic, pc, mc_eff, kc_eff);
                    for jp in 0..n_panels {
                        let bp_panel = &bp[jp * kc_eff * NR..(jp + 1) * kc_eff * NR];
                        let j0 = jc + jp * NR;
                        let nr_eff = NR.min(n - j0);
                        for ip in 0..m_panels {
                            let ap_panel = &ap[ip * kc_eff * MR..(ip + 1) * kc_eff * MR];
                            let i0 = ic + ip * MR;
                            let mr_eff = MR.min(m - i0);
                            let acc = micro_tile(ap_panel, bp_panel);
                            for (di, acc_row) in acc.iter().enumerate().take(mr_eff) {
                                let start = (i0 + di) * n + j0;
                                let c_row = &mut c_s[start..start + nr_eff];
                                for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                    *cv += av;
                                }
                            }
                        }
                    }
                    ic += mc_eff;
                }
                pc += kc_eff;
            }
            if let Some(act) = epi {
                for i in 0..m {
                    for v in &mut c_s[i * n + jc..i * n + jc + nc_eff] {
                        *v = act.apply(*v);
                    }
                }
            }
            jc += nc_eff;
        }
    }
}

impl MicroKernel for BlockedKernel {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm(&self, c: &mut Matrix, a: &Matrix, b: &Matrix) -> Result<(), ShapeError> {
        check_shapes("blocked_gemm", c, a, b)?;
        if below_cutoff(a, b) {
            return gemm::matmul_accumulate(c, a, b);
        }
        self.gemm_packed(c, a, b, None);
        Ok(())
    }

    fn gemm_epilogue(
        &self,
        c: &mut Matrix,
        a: &Matrix,
        b: &Matrix,
        act: Activation,
    ) -> Result<(), ShapeError> {
        check_shapes("blocked_gemm", c, a, b)?;
        if below_cutoff(a, b) {
            gemm::matmul_accumulate(c, a, b)?;
            act.apply_inplace(c);
            return Ok(());
        }
        self.gemm_packed(c, a, b, Some(act));
        Ok(())
    }
}

fn below_cutoff(a: &Matrix, b: &Matrix) -> bool {
    gemm::gemm_flops(a.rows() as u64, b.cols() as u64, a.cols() as u64) < NAIVE_CUTOFF_FLOPS
}

fn check_shapes(op: &'static str, c: &Matrix, a: &Matrix, b: &Matrix) -> Result<(), ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(op, a.shape(), b.shape()));
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(ShapeError::new(op, c.shape(), (a.rows(), b.cols())));
    }
    Ok(())
}

/// Packs an `m_eff × k_eff` block of `a` (top-left at `(row0, col0)`,
/// leading dimension `lda`) into [`MR`]-tall column micro-panels:
/// within each panel, the `MR` values of one K step are contiguous.
/// Rows past `m_eff` are zero-padded.
fn pack_a(
    ap: &mut [f32],
    a: &[f32],
    lda: usize,
    row0: usize,
    col0: usize,
    m_eff: usize,
    k_eff: usize,
) {
    for ip in 0..m_eff.div_ceil(MR) {
        let panel = &mut ap[ip * k_eff * MR..(ip + 1) * k_eff * MR];
        let rows = MR.min(m_eff - ip * MR);
        for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = if i < rows {
                    a[(row0 + ip * MR + i) * lda + col0 + p]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `k_eff × n_eff` block of `b` (top-left at `(row0, col0)`,
/// leading dimension `ldb`) into [`NR`]-wide row micro-panels: within
/// each panel, the `NR` values of one K step are contiguous. Columns
/// past `n_eff` are zero-padded.
fn pack_b(
    bp: &mut [f32],
    b: &[f32],
    ldb: usize,
    row0: usize,
    col0: usize,
    k_eff: usize,
    n_eff: usize,
) {
    for jp in 0..n_eff.div_ceil(NR) {
        let panel = &mut bp[jp * k_eff * NR..(jp + 1) * k_eff * NR];
        let cols = NR.min(n_eff - jp * NR);
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            let src0 = (row0 + p) * ldb + col0 + jp * NR;
            dst[..cols].copy_from_slice(&b[src0..src0 + cols]);
            dst[cols..].fill(0.0);
        }
    }
}

/// The register-blocked inner kernel: accumulates one [`MR`]×[`NR`]
/// tile over a full K slab from packed panels.
///
/// The accumulator is [`MR`] explicit local `[f32; NR]` arrays — not a
/// 2-D array — and the row updates are hand-unrolled in the K-step
/// body. Both choices are load-bearing for codegen: with a 2-D
/// accumulator indexed in a loop, LLVM's loop vectorizer picks the
/// strided (row-crossing) direction and spills the tile to memory with
/// gather/scatter, an order of magnitude slower. With per-row locals
/// the tile is SROA'd into vector registers and each row update
/// becomes one broadcast + one fused multiply-add over the whole row —
/// measured at `BENCH_interp.json` rates, all in safe Rust.
#[inline]
fn micro_tile(ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut r0 = [0.0f32; NR];
    let mut r1 = [0.0f32; NR];
    let mut r2 = [0.0f32; NR];
    let mut r3 = [0.0f32; NR];
    let mut r4 = [0.0f32; NR];
    let mut r5 = [0.0f32; NR];
    let mut r6 = [0.0f32; NR];
    let mut r7 = [0.0f32; NR];
    for (ak, bk) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let ak: &[f32; MR] = ak.try_into().expect("A panel step is MR wide");
        let bk: &[f32; NR] = bk.try_into().expect("B panel step is NR wide");
        for j in 0..NR {
            r0[j] = fmadd(ak[0], bk[j], r0[j]);
            r1[j] = fmadd(ak[1], bk[j], r1[j]);
            r2[j] = fmadd(ak[2], bk[j], r2[j]);
            r3[j] = fmadd(ak[3], bk[j], r3[j]);
            r4[j] = fmadd(ak[4], bk[j], r4[j]);
            r5[j] = fmadd(ak[5], bk[j], r5[j]);
            r6[j] = fmadd(ak[6], bk[j], r6[j]);
            r7[j] = fmadd(ak[7], bk[j], r7[j]);
        }
    }
    [r0, r1, r2, r3, r4, r5, r6, r7]
}

/// `a * b + c` as a hardware FMA when the compile target has one, and
/// as separate multiply + add otherwise — `f32::mul_add` without
/// hardware FMA lowers to a libm call that is orders of magnitude
/// slower than the arithmetic it replaces. The FMA form rounds once
/// instead of twice; both are within the blocked kernel's documented
/// 1e-4 normwise envelope against the naive oracle.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        c + a * b
    }
}

/// Which [`MicroKernel`] a numeric path uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// [`NaiveKernel`]: the scalar reference loop and numeric oracle.
    #[default]
    Naive,
    /// [`BlockedKernel`]: the packed, cache-blocked fast path.
    Blocked,
}

static NAIVE: NaiveKernel = NaiveKernel;
static BLOCKED: BlockedKernel = BlockedKernel::new();

impl KernelKind {
    /// The shared kernel instance for this kind.
    pub fn kernel(self) -> &'static dyn MicroKernel {
        match self {
            KernelKind::Naive => &NAIVE,
            KernelKind::Blocked => &BLOCKED,
        }
    }

    /// Parses the CLI/report spelling (`"naive"` / `"blocked"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "naive" => Some(KernelKind::Naive),
            "blocked" => Some(KernelKind::Blocked),
            _ => None,
        }
    }

    /// Every selectable kind, in bench order.
    pub fn all() -> [KernelKind; 2] {
        [KernelKind::Naive, KernelKind::Blocked]
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kernel().name())
    }
}

/// Deterministic, explicit numeric-backend selection for the
/// interpreter, the executors and `validate_graph`.
///
/// Selection is a plain enum rather than CPU detection so that fuzz
/// seeds and committed reports stay reproducible: the same
/// (seed, config) pair yields the same bits on every run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct NumericConfig {
    /// The GEMM backend every matmul on the path uses.
    pub kernel: KernelKind,
}

impl NumericConfig {
    /// The oracle configuration (naive kernel) — the default.
    pub fn naive() -> Self {
        NumericConfig {
            kernel: KernelKind::Naive,
        }
    }

    /// The fast-path configuration (blocked kernel).
    pub fn blocked() -> Self {
        NumericConfig {
            kernel: KernelKind::Blocked,
        }
    }

    /// The selected kernel instance.
    pub fn micro_kernel(&self) -> &'static dyn MicroKernel {
        self.kernel.kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_matrix;

    fn normwise_close(got: &Matrix, reference: &Matrix, tol: f32) -> bool {
        let err = got.max_abs_diff(reference).unwrap();
        let scale = reference
            .as_slice()
            .iter()
            .fold(1.0f32, |m, v| m.max(v.abs()));
        err / scale <= tol
    }

    #[test]
    fn blocked_matches_naive_above_the_cutoff() {
        // 96 x 80 x 72 is above NAIVE_CUTOFF_FLOPS and not a multiple
        // of the micro-tile in any dimension.
        let a = seeded_matrix(96, 72, 11);
        let b = seeded_matrix(72, 80, 12);
        let mut naive = Matrix::zeros(96, 80);
        NaiveKernel.gemm(&mut naive, &a, &b).unwrap();
        let mut blocked = Matrix::zeros(96, 80);
        BlockedKernel::new().gemm(&mut blocked, &a, &b).unwrap();
        assert!(normwise_close(&blocked, &naive, 1e-5));
    }

    #[test]
    fn blocked_accumulates_into_existing_output() {
        let a = seeded_matrix(40, 48, 21);
        let b = seeded_matrix(48, 40, 22);
        let mut expect = Matrix::from_fn(40, 40, |r, c| (r + c) as f32);
        let mut got = expect.clone();
        NaiveKernel.gemm(&mut expect, &a, &b).unwrap();
        BlockedKernel::new().gemm(&mut got, &a, &b).unwrap();
        assert!(normwise_close(&got, &expect, 1e-5));
    }

    #[test]
    fn epilogue_matches_separate_activation_for_both_kernels() {
        let a = seeded_matrix(48, 40, 31);
        let b = seeded_matrix(40, 56, 32);
        for kind in KernelKind::all() {
            for act in Activation::all() {
                let kernel = kind.kernel();
                let mut separate = Matrix::from_fn(48, 56, |r, c| (r * 56 + c) as f32 * 0.01);
                let mut fused = separate.clone();
                kernel.gemm(&mut separate, &a, &b).unwrap();
                act.apply_inplace(&mut separate);
                kernel.gemm_epilogue(&mut fused, &a, &b, act).unwrap();
                assert_eq!(
                    fused.as_slice(),
                    separate.as_slice(),
                    "{kind} epilogue diverged for {act:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_block_shapes_stay_correct() {
        let a = seeded_matrix(13, 9, 7);
        let b = seeded_matrix(9, 11, 8);
        let reference = gemm::matmul(&a, &b).unwrap();
        for (mc, kc, nc) in [(1, 1, 1), (2, 3, 5), (8, 16, 8), (64, 64, 64)] {
            let mut c = Matrix::zeros(13, 11);
            BlockedKernel::with_blocks(mc, kc, nc).gemm_packed(&mut c, &a, &b, None);
            assert!(
                reference.approx_eq(&c, 1e-5).unwrap(),
                "blocks ({mc},{kc},{nc}) diverged"
            );
        }
    }

    #[test]
    fn kernels_reject_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        for kind in KernelKind::all() {
            assert!(kind.kernel().gemm(&mut c, &a, &b).is_err());
        }
        let b = Matrix::zeros(3, 5);
        for kind in KernelKind::all() {
            assert!(
                kind.kernel().gemm(&mut c, &a, &b).is_err(),
                "wrong C shape must be rejected"
            );
        }
    }

    #[test]
    fn kind_parses_its_own_display() {
        for kind in KernelKind::all() {
            assert_eq!(KernelKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(KernelKind::parse("turbo"), None);
        assert_eq!(KernelKind::default(), KernelKind::Naive);
        assert_eq!(NumericConfig::default(), NumericConfig::naive());
        assert_eq!(NumericConfig::blocked().micro_kernel().name(), "blocked");
    }
}
