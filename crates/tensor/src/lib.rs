//! Dense tensor substrate for the FlashFuser reproduction.
//!
//! This crate provides the numeric foundation every other layer builds on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with tile extraction/insertion,
//!   used both as workload data and as the contents of simulated on-chip
//!   buffers.
//! * [`gemm`] — reference GEMM kernels (naive and blocked) that define
//!   ground-truth numerics for every fused plan the simulator executes.
//! * [`kernel`] — pluggable GEMM backends behind the [`MicroKernel`]
//!   trait: the naive oracle loop and a packed, cache-blocked,
//!   autovectorized fast path, selected explicitly via
//!   [`NumericConfig`] (no CPU sniffing, so results are reproducible).
//! * [`Activation`] / [`BinaryOp`] — the element-wise operators that appear
//!   between GEMMs in the paper's chains (ReLU, SiLU, Mul, Add, ...).
//! * [`im2col`] — the convolution-to-GEMM lowering used for the paper's
//!   conv chains (Table V).
//! * [`rng`] — deterministic seeded data generation so that every
//!   experiment in the repository is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use flashfuser_tensor::{Matrix, gemm};
//!
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::identity(3);
//! let c = gemm::matmul(&a, &b).unwrap();
//! assert_eq!(c, a);
//! ```

pub mod activation;
pub mod error;
pub mod gemm;
pub mod im2col;
pub mod kernel;
pub mod matrix;
pub mod rng;
pub mod softmax;
pub mod tile;

pub use activation::{Activation, BinaryOp};
pub use error::ShapeError;
pub use im2col::Conv2dSpec;
pub use kernel::{BlockedKernel, KernelKind, MicroKernel, NaiveKernel, NumericConfig};
pub use matrix::Matrix;
pub use softmax::{rowwise_softmax, rowwise_softmax_inplace, softmax_scale};
pub use tile::TileGrid;
