//! Deterministic seeded data generation.
//!
//! Every workload matrix in the repository comes from here, so that each
//! experiment (and every test) is reproducible bit-for-bit across runs and
//! machines. Values are drawn uniformly from `[-1, 1)`, matching the
//! magnitude regime of normalised transformer activations and keeping f32
//! accumulation error small relative to tile sums.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Creates a `rows x cols` matrix with uniform `[-1, 1)` entries drawn from
/// a [`StdRng`] seeded with `seed`.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::rng::seeded_matrix;
///
/// let a = seeded_matrix(4, 4, 42);
/// let b = seeded_matrix(4, 4, 42);
/// assert_eq!(a, b); // fully deterministic
/// ```
pub fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("generated data length matches shape")
}

/// Creates a matrix of uniform `[lo, hi)` entries from `seed`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn seeded_matrix_range(rows: usize, cols: usize, seed: u64, lo: f32, hi: f32) -> Matrix {
    assert!(lo < hi, "empty value range");
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.random_range(lo..hi))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("generated data length matches shape")
}

/// Derives a sub-seed from a base seed and a label, so that one workload
/// seed can deterministically generate several distinct matrices
/// (`A`, `B`, `D`, ...) without collisions.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the base seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base.rotate_left(17);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        assert_eq!(seeded_matrix(5, 7, 1), seeded_matrix(5, 7, 1));
    }

    #[test]
    fn different_seed_different_matrix() {
        assert_ne!(seeded_matrix(5, 7, 1), seeded_matrix(5, 7, 2));
    }

    #[test]
    fn values_in_range() {
        let m = seeded_matrix(32, 32, 9);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let m2 = seeded_matrix_range(8, 8, 9, 5.0, 6.0);
        assert!(m2.as_slice().iter().all(|&x| (5.0..6.0).contains(&x)));
    }

    #[test]
    fn derive_seed_separates_labels() {
        let a = derive_seed(42, "A");
        let b = derive_seed(42, "B");
        let a2 = derive_seed(43, "A");
        assert_ne!(a, b);
        assert_ne!(a, a2);
        assert_eq!(a, derive_seed(42, "A"));
    }

    #[test]
    #[should_panic(expected = "empty value range")]
    fn bad_range_panics() {
        seeded_matrix_range(1, 1, 0, 2.0, 2.0);
    }
}
