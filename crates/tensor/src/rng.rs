//! Deterministic seeded data generation.
//!
//! Every workload matrix in the repository comes from here, so that each
//! experiment (and every test) is reproducible bit-for-bit across runs and
//! machines. Values are drawn uniformly from `[-1, 1)`, matching the
//! magnitude regime of normalised transformer activations and keeping f32
//! accumulation error small relative to tile sums.
//!
//! The generator is a self-contained [SplitMix64] stream (no external
//! crates): fast, well-distributed for data generation, and trivially
//! portable, which is all the repository needs — nothing here is
//! cryptographic.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::matrix::Matrix;

/// A SplitMix64 pseudo-random stream.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn next_f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        let x = lo + (self.next_f64() as f32) * (hi - lo);
        // f32 rounding can land exactly on the open upper bound.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        (self.next_u64() % n as u64) as usize
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_index(items.len())]
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Creates a `rows x cols` matrix with uniform `[-1, 1)` entries drawn from
/// a [`SplitMix64`] stream seeded with `seed`.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::rng::seeded_matrix;
///
/// let a = seeded_matrix(4, 4, 42);
/// let b = seeded_matrix(4, 4, 42);
/// assert_eq!(a, b); // fully deterministic
/// ```
pub fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    seeded_matrix_range(rows, cols, seed, -1.0, 1.0)
}

/// Creates a matrix of uniform `[lo, hi)` entries from `seed`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn seeded_matrix_range(rows: usize, cols: usize, seed: u64, lo: f32, hi: f32) -> Matrix {
    assert!(lo < hi, "empty value range");
    let mut rng = SplitMix64::new(seed);
    let data = (0..rows * cols)
        .map(|_| rng.next_f32_range(lo, hi))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("generated data length matches shape")
}

/// Derives a sub-seed from a base seed and a label, so that one workload
/// seed can deterministically generate several distinct matrices
/// (`A`, `B`, `D`, ...) without collisions.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the base seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base.rotate_left(17);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        assert_eq!(seeded_matrix(5, 7, 1), seeded_matrix(5, 7, 1));
    }

    #[test]
    fn different_seed_different_matrix() {
        assert_ne!(seeded_matrix(5, 7, 1), seeded_matrix(5, 7, 2));
    }

    #[test]
    fn values_in_range() {
        let m = seeded_matrix(32, 32, 9);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let m2 = seeded_matrix_range(8, 8, 9, 5.0, 6.0);
        assert!(m2.as_slice().iter().all(|&x| (5.0..6.0).contains(&x)));
    }

    #[test]
    fn stream_covers_unit_interval() {
        let mut rng = SplitMix64::new(3);
        let draws: Vec<f64> = (0..4096).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn next_bool_respects_probability_extremes() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..64 {
            assert!(rng.next_bool(1.0));
            assert!(!rng.next_bool(0.0));
        }
        let hits = (0..4096).filter(|_| rng.next_bool(0.25)).count();
        let rate = hits as f64 / 4096.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn pick_and_index_bounded() {
        let mut rng = SplitMix64::new(11);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
            assert!(rng.next_index(5) < 5);
        }
    }

    #[test]
    fn derive_seed_separates_labels() {
        let a = derive_seed(42, "A");
        let b = derive_seed(42, "B");
        let a2 = derive_seed(43, "A");
        assert_ne!(a, b);
        assert_ne!(a, a2);
        assert_eq!(a, derive_seed(42, "A"));
    }

    #[test]
    #[should_panic(expected = "empty value range")]
    fn bad_range_panics() {
        seeded_matrix_range(1, 1, 0, 2.0, 2.0);
    }
}
