//! Rowwise softmax — the reduction between attention's two GEMMs.
//!
//! Every layer of the stack that touches attention numerics funnels
//! through this module: the interpreter oracle, the fused tile-level
//! executor, the unfused kernel path and the chain reference outputs
//! all call the same [`rowwise_softmax`] so that a fused plan and its
//! oracle disagree only by floating-point summation order, never by
//! definition.
//!
//! The implementation is the numerically safe three-step form:
//! optional scale (`1/sqrt(d_k)` for scaled dot-product attention),
//! max-shift so `exp` never overflows, then exp + normalize. Rows are
//! independent; within a row the max and the sum are reduced in column
//! order, which pins the bit pattern per kernel backend.

use crate::matrix::Matrix;

/// The softmax scale factor for a head dimension `scale_k`: `1` when
/// `scale_k == 0` (plain softmax), `1/sqrt(scale_k)` otherwise.
///
/// Centralised so the graph layer, the executor and the oracle derive
/// bit-identical scales from the same integer.
pub fn softmax_scale(scale_k: usize) -> f32 {
    if scale_k == 0 {
        1.0
    } else {
        1.0 / (scale_k as f32).sqrt()
    }
}

/// Applies scaled rowwise softmax in place: each row is multiplied by
/// `scale`, shifted by its maximum, exponentiated and normalized to
/// sum 1.
///
/// The max-shift makes the largest exponent exactly `exp(0) = 1`, so
/// arbitrarily large inputs cannot overflow; a row of `-inf` would
/// yield NaN, but finite inputs always produce a valid distribution.
pub fn rowwise_softmax_inplace(m: &mut Matrix, scale: f32) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let mut max = f32::NEG_INFINITY;
        for v in row.iter_mut() {
            *v *= scale;
            max = max.max(*v);
        }
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Scaled rowwise softmax, returning a new matrix. See
/// [`rowwise_softmax_inplace`].
pub fn rowwise_softmax(m: &Matrix, scale: f32) -> Matrix {
    let mut out = m.clone();
    rowwise_softmax_inplace(&mut out, scale);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let m = Matrix::from_fn(5, 7, |r, c| (r as f32 - 2.0) * (c as f32 + 0.5));
        let s = rowwise_softmax(&m, 1.0);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn shift_invariance() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.3 - 1.0);
        let shifted = m.map(|x| x + 123.5);
        let a = rowwise_softmax(&m, 1.0);
        let b = rowwise_softmax(&shifted, 1.0);
        assert!(a.approx_eq(&b, 1e-6).unwrap());
    }

    #[test]
    fn huge_magnitudes_do_not_overflow() {
        let m = Matrix::from_fn(2, 3, |r, c| 1e30 * (1.0 + (r * 3 + c) as f32));
        let s = rowwise_softmax(&m, 1.0);
        for v in s.as_slice() {
            assert!(v.is_finite());
        }
        // The largest entry dominates completely at this magnitude.
        assert_eq!(s.row(0)[2], 1.0);
    }

    #[test]
    fn scale_matches_manual_prescaling() {
        let m = Matrix::from_fn(4, 6, |r, c| (r as f32 + 1.0) * (c as f32 - 2.0));
        let scale = softmax_scale(64);
        let direct = rowwise_softmax(&m, scale);
        let manual = rowwise_softmax(&m.map(|x| x * scale), 1.0);
        assert!(direct.approx_eq(&manual, 1e-6).unwrap());
        assert_eq!(softmax_scale(0), 1.0);
        assert_eq!(softmax_scale(16), 0.25);
    }
}
