//! Element-wise operators appearing between GEMMs in fused chains.
//!
//! The paper's chains (Fig. 1) interleave GEMMs with ReLU (standard FFN,
//! conv blocks) or SiLU + element-wise Mul (gated FFN / SwiGLU). The
//! `dsm_all_exchange` primitive carries a [`BinaryOp`] so the same exchange
//! performs `Add` for K-partitioned partial sums or `Mul` for gated
//! branches (§IV-A).

use crate::matrix::Matrix;
use std::fmt;

/// A unary activation function.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::Activation;
///
/// assert_eq!(Activation::Relu.apply(-1.0), 0.0);
/// assert_eq!(Activation::Relu.apply(2.0), 2.0);
/// assert_eq!(Activation::Identity.apply(-3.5), -3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Pass-through (no activation).
    #[default]
    Identity,
    /// `max(0, x)` — standard FFN and conv chains.
    Relu,
    /// `x * sigmoid(x)` — gated FFN (SwiGLU) chains.
    Silu,
    /// Gaussian error linear unit (tanh approximation), used by BERT/GPT-2.
    Gelu,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Silu => x / (1.0 + (-x).exp()),
            Activation::Gelu => {
                const SQRT_2_OVER_PI: f32 = 0.797_884_6;
                0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
            }
        }
    }

    /// Applies the activation element-wise, returning a new matrix.
    pub fn apply_matrix(self, m: &Matrix) -> Matrix {
        m.map(|x| self.apply(x))
    }

    /// Applies the activation element-wise in place.
    pub fn apply_inplace(self, m: &mut Matrix) {
        m.map_inplace(|x| self.apply(x));
    }

    /// All supported activations, for property tests and sweeps.
    pub fn all() -> [Activation; 4] {
        [
            Activation::Identity,
            Activation::Relu,
            Activation::Silu,
            Activation::Gelu,
        ]
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Silu => "silu",
            Activation::Gelu => "gelu",
        };
        f.write_str(s)
    }
}

/// A binary element-wise combiner.
///
/// Carried by the `dsm_all_exchange` primitive: `Add` accumulates
/// K-partitioned partial sums, `Mul` combines the two branches of a gated
/// FFN, `Max` is included for completeness (pooling-style epilogues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BinaryOp {
    /// Element-wise sum (partial-sum accumulation).
    #[default]
    Add,
    /// Element-wise product (gated-FFN branch combine).
    Mul,
    /// Element-wise maximum.
    Max,
}

impl BinaryOp {
    /// Applies the combiner to two scalars.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Mul => a * b,
            BinaryOp::Max => a.max(b),
        }
    }

    /// The identity element of the combiner, used to initialise
    /// accumulation buffers (`0` for Add, `1` for Mul, `-inf` for Max).
    pub fn identity_value(self) -> f32 {
        match self {
            BinaryOp::Add => 0.0,
            BinaryOp::Mul => 1.0,
            BinaryOp::Max => f32::NEG_INFINITY,
        }
    }

    /// Combines two matrices element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ShapeError`] on shape mismatch.
    pub fn apply_matrix(self, a: &Matrix, b: &Matrix) -> Result<Matrix, crate::ShapeError> {
        match self {
            BinaryOp::Add => a.add(b),
            BinaryOp::Mul => a.mul_elem(b),
            BinaryOp::Max => {
                if a.shape() != b.shape() {
                    return Err(crate::ShapeError::new("max_elem", a.shape(), b.shape()));
                }
                let mut out = a.clone();
                let bs = b.as_slice();
                for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
                    *v = v.max(bs[i]);
                }
                Ok(out)
            }
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "add",
            BinaryOp::Mul => "mul",
            BinaryOp::Max => "max",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-5.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn silu_known_values() {
        // silu(0) = 0, silu(x) -> x for large x, silu(-x) -> 0 for large x.
        assert_eq!(Activation::Silu.apply(0.0), 0.0);
        assert!((Activation::Silu.apply(10.0) - 10.0).abs() < 1e-3);
        assert!(Activation::Silu.apply(-10.0).abs() < 1e-3);
        // silu(1) = 1 / (1 + e^-1) = 0.731058...
        assert!((Activation::Silu.apply(1.0) - 0.731_058_6).abs() < 1e-5);
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!((Activation::Gelu.apply(1.0) - 0.841_19).abs() < 1e-3);
        assert!(Activation::Gelu.apply(-10.0).abs() < 1e-3);
    }

    #[test]
    fn apply_matrix_is_elementwise() {
        let m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        let out = Activation::Relu.apply_matrix(&m);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0]);
        let mut m2 = m.clone();
        Activation::Relu.apply_inplace(&mut m2);
        assert_eq!(m2, out);
    }

    #[test]
    fn binary_ops_and_identities() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
        for op in [BinaryOp::Add, BinaryOp::Mul, BinaryOp::Max] {
            let x = 1.2345f32;
            assert_eq!(op.apply(op.identity_value(), x), x, "{op} identity");
        }
    }

    #[test]
    fn binary_apply_matrix() {
        let a = Matrix::from_vec(1, 2, vec![1.0, -4.0]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![3.0, 2.0]).unwrap();
        assert_eq!(
            BinaryOp::Mul.apply_matrix(&a, &b).unwrap().as_slice(),
            &[3.0, -8.0]
        );
        assert_eq!(
            BinaryOp::Max.apply_matrix(&a, &b).unwrap().as_slice(),
            &[3.0, 2.0]
        );
        assert!(BinaryOp::Max
            .apply_matrix(&a, &Matrix::zeros(2, 2))
            .is_err());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Activation::Silu.to_string(), "silu");
        assert_eq!(BinaryOp::Mul.to_string(), "mul");
    }
}
