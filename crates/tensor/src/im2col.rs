//! Convolution-to-GEMM lowering (`im2col`).
//!
//! The paper's conv chains (Table V) are executed as GEMM chains after an
//! im2col transform (Fig. 1(a)). This module provides the transform plus a
//! direct convolution reference, so tests can prove the lowering is exact.
//!
//! Layout conventions: inputs are CHW (`channels x height x width`)
//! flattened into a `Matrix` of shape `(C, H*W)`; weights are
//! `(OC, IC*KH*KW)`; the im2col patch matrix is `(H_out*W_out, IC*KH*KW)`
//! so that `patches x weightsᵀ` yields `(H_out*W_out, OC)` — the GEMM
//! orientation the fusion engine consumes (M = spatial positions).

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// Geometry of a 2-D convolution, stride 1 with "same"-style zero padding
/// chosen so `H_out = H` (the ResNet blocks in Table V use 1x1 and 3x3
/// kernels with padding preserving spatial size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Input (and output) height.
    pub height: usize,
    /// Input (and output) width.
    pub width: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size (1 or 3 in Table V).
    pub kernel: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (same-padding requires odd kernels) or any
    /// dimension is zero.
    pub fn new(
        in_channels: usize,
        height: usize,
        width: usize,
        out_channels: usize,
        kernel: usize,
    ) -> Self {
        assert!(kernel % 2 == 1, "same-padding requires an odd kernel size");
        assert!(
            in_channels > 0 && height > 0 && width > 0 && out_channels > 0,
            "conv dimensions must be positive"
        );
        Self {
            in_channels,
            height,
            width,
            out_channels,
            kernel,
        }
    }

    /// Zero padding on each side (`(kernel - 1) / 2`).
    pub fn padding(&self) -> usize {
        (self.kernel - 1) / 2
    }

    /// Rows of the im2col patch matrix: `H * W` spatial positions.
    pub fn gemm_m(&self) -> usize {
        self.height * self.width
    }

    /// Columns of the im2col patch matrix: `IC * K * K`.
    pub fn gemm_k(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Output columns of the lowered GEMM: `OC`.
    pub fn gemm_n(&self) -> usize {
        self.out_channels
    }
}

/// Expands a CHW input (`(C, H*W)` matrix) into the im2col patch matrix of
/// shape `(H*W, IC*K*K)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not `(in_channels, height*width)`.
pub fn im2col(input: &Matrix, spec: &Conv2dSpec) -> Result<Matrix, ShapeError> {
    let expected = (spec.in_channels, spec.height * spec.width);
    if input.shape() != expected {
        return Err(ShapeError::new("im2col", input.shape(), expected));
    }
    let pad = spec.padding() as isize;
    let (h, w, k) = (spec.height as isize, spec.width as isize, spec.kernel);
    let mut patches = Matrix::zeros(spec.gemm_m(), spec.gemm_k());
    for oy in 0..h {
        for ox in 0..w {
            let row = (oy * w + ox) as usize;
            let mut col = 0;
            for c in 0..spec.in_channels {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = oy + ky as isize - pad;
                        let ix = ox + kx as isize - pad;
                        let v = if iy >= 0 && iy < h && ix >= 0 && ix < w {
                            input[(c, (iy * w + ix) as usize)]
                        } else {
                            0.0
                        };
                        patches.set(row, col, v);
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(patches)
}

/// Direct (non-GEMM) 2-D convolution reference.
///
/// `input` is `(IC, H*W)`, `weights` is `(OC, IC*K*K)`; the result is
/// `(OC, H*W)` in the same CHW-flattened layout.
///
/// # Errors
///
/// Returns [`ShapeError`] on layout mismatch.
pub fn conv2d_direct(
    input: &Matrix,
    weights: &Matrix,
    spec: &Conv2dSpec,
) -> Result<Matrix, ShapeError> {
    let expected_in = (spec.in_channels, spec.height * spec.width);
    if input.shape() != expected_in {
        return Err(ShapeError::new("conv2d_direct", input.shape(), expected_in));
    }
    let expected_w = (spec.out_channels, spec.gemm_k());
    if weights.shape() != expected_w {
        return Err(ShapeError::new(
            "conv2d_direct",
            weights.shape(),
            expected_w,
        ));
    }
    let pad = spec.padding() as isize;
    let (h, w, k) = (spec.height as isize, spec.width as isize, spec.kernel);
    let mut out = Matrix::zeros(spec.out_channels, spec.height * spec.width);
    for oc in 0..spec.out_channels {
        for oy in 0..h {
            for ox in 0..w {
                let mut acc = 0.0;
                for ic in 0..spec.in_channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy + ky as isize - pad;
                            let ix = ox + kx as isize - pad;
                            if iy >= 0 && iy < h && ix >= 0 && ix < w {
                                let wv = weights[(oc, ic * k * k + ky * k + kx)];
                                acc += wv * input[(ic, (iy * w + ix) as usize)];
                            }
                        }
                    }
                }
                out.set(oc, (oy * w + ox) as usize, acc);
            }
        }
    }
    Ok(out)
}

/// Lowers a convolution to GEMM: `im2col(input) × weightsᵀ`, returning the
/// `(H*W, OC)` result in the GEMM orientation (M = spatial positions).
///
/// # Errors
///
/// Returns [`ShapeError`] on layout mismatch.
pub fn conv2d_as_gemm(
    input: &Matrix,
    weights: &Matrix,
    spec: &Conv2dSpec,
) -> Result<Matrix, ShapeError> {
    let patches = im2col(input, spec)?;
    crate::gemm::matmul(&patches, &weights.transpose())
}

/// [`conv2d_as_gemm`] with an explicit
/// [`MicroKernel`](crate::kernel::MicroKernel) backend — the
/// lowered `patches × weightsᵀ` GEMM is exactly the shape the packed
/// blocked kernel is built for (`H*W` rows, `IC*K*K` deep), so conv
/// chains reuse the fast path with no conv-specific kernel code.
///
/// # Errors
///
/// Returns [`ShapeError`] on layout mismatch.
pub fn conv2d_as_gemm_with(
    kernel: &dyn crate::kernel::MicroKernel,
    input: &Matrix,
    weights: &Matrix,
    spec: &Conv2dSpec,
) -> Result<Matrix, ShapeError> {
    let patches = im2col(input, spec)?;
    crate::gemm::matmul_with(kernel, &patches, &weights.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_matrix;

    fn spec_1x1() -> Conv2dSpec {
        Conv2dSpec::new(3, 4, 5, 2, 1)
    }

    fn spec_3x3() -> Conv2dSpec {
        Conv2dSpec::new(2, 5, 5, 4, 3)
    }

    #[test]
    fn gemm_dims_match_paper_formula() {
        // Table V row C5: IC=64, H=W=56, OC1=64, k1=3.
        let s = Conv2dSpec::new(64, 56, 56, 64, 3);
        assert_eq!(s.gemm_m(), 56 * 56);
        assert_eq!(s.gemm_k(), 64 * 9);
        assert_eq!(s.gemm_n(), 64);
        assert_eq!(s.padding(), 1);
    }

    #[test]
    fn im2col_1x1_is_transpose() {
        // For a 1x1 kernel, im2col is exactly the transpose of the CHW input.
        let s = spec_1x1();
        let input = seeded_matrix(s.in_channels, s.height * s.width, 3);
        let patches = im2col(&input, &s).unwrap();
        assert_eq!(patches, input.transpose());
    }

    #[test]
    fn im2col_shape() {
        let s = spec_3x3();
        let input = seeded_matrix(s.in_channels, s.height * s.width, 4);
        let patches = im2col(&input, &s).unwrap();
        assert_eq!(patches.shape(), (s.gemm_m(), s.gemm_k()));
    }

    #[test]
    fn im2col_zero_pads_borders() {
        let s = Conv2dSpec::new(1, 3, 3, 1, 3);
        let input = Matrix::from_fn(1, 9, |_, c| (c + 1) as f32);
        let patches = im2col(&input, &s).unwrap();
        // Patch at output (0,0): kernel positions off the top-left are zero.
        assert_eq!(patches[(0, 0)], 0.0); // (-1,-1)
        assert_eq!(patches[(0, 4)], 1.0); // centre = input (0,0)
        assert_eq!(patches[(0, 8)], 5.0); // (+1,+1) = input (1,1)
    }

    #[test]
    fn gemm_lowering_matches_direct_conv_1x1() {
        let s = spec_1x1();
        let input = seeded_matrix(s.in_channels, s.height * s.width, 5);
        let weights = seeded_matrix(s.out_channels, s.gemm_k(), 6);
        let direct = conv2d_direct(&input, &weights, &s).unwrap();
        let lowered = conv2d_as_gemm(&input, &weights, &s).unwrap();
        // `lowered` is (H*W, OC); direct is (OC, H*W).
        assert!(direct.transpose().approx_eq(&lowered, 1e-5).unwrap());
    }

    #[test]
    fn gemm_lowering_matches_direct_conv_3x3() {
        let s = spec_3x3();
        let input = seeded_matrix(s.in_channels, s.height * s.width, 7);
        let weights = seeded_matrix(s.out_channels, s.gemm_k(), 8);
        let direct = conv2d_direct(&input, &weights, &s).unwrap();
        let lowered = conv2d_as_gemm(&input, &weights, &s).unwrap();
        assert!(direct.transpose().approx_eq(&lowered, 1e-4).unwrap());
    }

    #[test]
    fn blocked_lowering_matches_direct_conv() {
        // Table-V-like extents so the packed path actually engages.
        let s = Conv2dSpec::new(8, 12, 12, 16, 3);
        let input = seeded_matrix(s.in_channels, s.height * s.width, 9);
        let weights = seeded_matrix(s.out_channels, s.gemm_k(), 10);
        let direct = conv2d_direct(&input, &weights, &s).unwrap();
        let kernel = crate::kernel::KernelKind::Blocked.kernel();
        let lowered = conv2d_as_gemm_with(kernel, &input, &weights, &s).unwrap();
        assert!(direct.transpose().approx_eq(&lowered, 1e-4).unwrap());
    }

    #[test]
    fn bad_input_shape_is_error() {
        let s = spec_3x3();
        let wrong = Matrix::zeros(1, 1);
        assert!(im2col(&wrong, &s).is_err());
        assert!(conv2d_direct(&wrong, &Matrix::zeros(4, 18), &s).is_err());
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_panics() {
        Conv2dSpec::new(1, 4, 4, 1, 2);
    }
}
