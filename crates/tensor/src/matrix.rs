//! Row-major `f32` matrix with tile access.
//!
//! [`Matrix`] doubles as workload data (activations, weights) and as the
//! contents of simulated on-chip buffers in `flashfuser-sim`. Tile
//! extraction/insertion mirrors the block-granularity data movement the
//! paper's fused kernels perform between memory tiers.

use crate::error::ShapeError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use flashfuser_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
/// assert_eq!(m[(0, 1)], 1.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the matrix in bytes, assuming the element width used by the
    /// paper's workloads (`f16`, 2 bytes). The simulator accounts traffic in
    /// these units so that capacities line up with the paper's 227 KB SMEM
    /// threshold.
    pub fn storage_bytes_f16(&self) -> u64 {
        (self.len() as u64) * 2
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the value at `(r, c)`, or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Sets the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Extracts the `tile_rows x tile_cols` tile whose top-left corner is at
    /// `(row0, col0)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tile does not fit inside the matrix.
    pub fn tile(
        &self,
        row0: usize,
        col0: usize,
        tile_rows: usize,
        tile_cols: usize,
    ) -> Result<Matrix, ShapeError> {
        if row0 + tile_rows > self.rows || col0 + tile_cols > self.cols {
            return Err(ShapeError::new(
                "tile",
                (self.rows, self.cols),
                (row0 + tile_rows, col0 + tile_cols),
            ));
        }
        let mut t = Matrix::zeros(tile_rows, tile_cols);
        for r in 0..tile_rows {
            let src = (row0 + r) * self.cols + col0;
            t.data[r * tile_cols..(r + 1) * tile_cols]
                .copy_from_slice(&self.data[src..src + tile_cols]);
        }
        Ok(t)
    }

    /// Writes `tile` into this matrix with its top-left corner at
    /// `(row0, col0)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tile does not fit.
    pub fn set_tile(&mut self, row0: usize, col0: usize, tile: &Matrix) -> Result<(), ShapeError> {
        if row0 + tile.rows > self.rows || col0 + tile.cols > self.cols {
            return Err(ShapeError::new(
                "set_tile",
                (self.rows, self.cols),
                (row0 + tile.rows, col0 + tile.cols),
            ));
        }
        for r in 0..tile.rows {
            let dst = (row0 + r) * self.cols + col0;
            self.data[dst..dst + tile.cols]
                .copy_from_slice(&tile.data[r * tile.cols..(r + 1) * tile.cols]);
        }
        Ok(())
    }

    /// Adds `tile` element-wise into the region with top-left `(row0, col0)`.
    ///
    /// This is the accumulation path used by the simulated
    /// `inter_cluster_reduce` (TMA `cp.reduce.async.bulk`) primitive.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tile does not fit.
    pub fn add_tile(&mut self, row0: usize, col0: usize, tile: &Matrix) -> Result<(), ShapeError> {
        if row0 + tile.rows > self.rows || col0 + tile.cols > self.cols {
            return Err(ShapeError::new(
                "add_tile",
                (self.rows, self.cols),
                (row0 + tile.rows, col0 + tile.cols),
            ));
        }
        for r in 0..tile.rows {
            let dst = (row0 + r) * self.cols + col0;
            for c in 0..tile.cols {
                self.data[dst + c] += tile.data[r * tile.cols + c];
            }
        }
        Ok(())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Element-wise sum with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise (Hadamard) product with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn mul_elem(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "mul_elem", |a, b| a * b)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Largest absolute element difference against `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("max_abs_diff", self.shape(), other.shape()));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// `true` when every element differs from `other` by at most `tol`
    /// in a mixed absolute/relative sense: `|a-b| <= tol * max(1, |a|, |b|)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> Result<bool, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("approx_eq", self.shape(), other.shape()));
        }
        Ok(self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        }))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(op, self.shape(), other.shape()));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:9.4}", self.data[r * self.cols + c])?;
                if c + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(id[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn tile_round_trip() {
        let m = Matrix::from_fn(6, 8, |r, c| (r * 8 + c) as f32);
        let t = m.tile(2, 4, 3, 4).unwrap();
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t[(0, 0)], m[(2, 4)]);
        assert_eq!(t[(2, 3)], m[(4, 7)]);

        let mut out = Matrix::zeros(6, 8);
        out.set_tile(2, 4, &t).unwrap();
        assert_eq!(out[(3, 5)], m[(3, 5)]);
        assert_eq!(out[(0, 0)], 0.0);
    }

    #[test]
    fn tile_out_of_bounds_is_error() {
        let m = Matrix::zeros(4, 4);
        assert!(m.tile(2, 2, 3, 1).is_err());
        assert!(m.tile(0, 3, 1, 2).is_err());
    }

    #[test]
    fn add_tile_accumulates() {
        let mut m = Matrix::from_fn(4, 4, |_, _| 1.0);
        let t = Matrix::from_fn(2, 2, |_, _| 2.0);
        m.add_tile(1, 1, &t).unwrap();
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(2, 2)], 3.0);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(3, 3)], 1.0);
    }

    #[test]
    fn transpose_involutive() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 2, |_, _| 2.0);
        assert_eq!(a.add(&b).unwrap()[(1, 1)], 4.0);
        assert_eq!(a.mul_elem(&b).unwrap()[(1, 1)], 4.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        let a = Matrix::from_fn(2, 2, |_, _| 100.0);
        let b = a.map(|x| x + 1e-4);
        assert!(a.approx_eq(&b, 1e-5).unwrap());
        assert!(!a.approx_eq(&b, 1e-8).unwrap());
    }

    #[test]
    fn storage_bytes_f16_counts_two_bytes_per_element() {
        assert_eq!(Matrix::zeros(128, 128).storage_bytes_f16(), 32768);
    }

    #[test]
    fn debug_output_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
