//! The baseline policies.

use flashfuser_core::{MachineDescriptor, MemLevel, PruneConfig, SearchConfig, SearchEngine};
use flashfuser_graph::ChainSpec;
use flashfuser_sim::{unfused_time, SimProfiler};
use std::fmt;

/// The outcome of running one system on one chain.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// System name.
    pub name: &'static str,
    /// End-to-end seconds for the chain.
    pub seconds: f64,
    /// Global-memory bytes moved.
    pub global_bytes: u64,
    /// Whether the system fused the whole chain into one kernel.
    pub fused: bool,
    /// Free-form note (e.g. `"fusion failed: intermediate 2 MiB"`).
    pub detail: String,
}

impl BaselineResult {
    /// Speedup of this result over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &BaselineResult) -> f64 {
        other.seconds / self.seconds
    }
}

impl fmt::Display for BaselineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} us ({}, {} B global)",
            self.name,
            self.seconds * 1e6,
            if self.fused { "fused" } else { "unfused" },
            self.global_bytes
        )
    }
}

/// A baseline system: runs a chain, returns its simulated cost.
pub trait Baseline {
    /// Display name (figure legend).
    fn name(&self) -> &'static str;
    /// Executes `chain` under this system's capability envelope.
    fn run(&self, chain: &ChainSpec) -> BaselineResult;
}

/// Helper: an unfused run at a given kernel efficiency.
fn unfused_result(
    name: &'static str,
    chain: &ChainSpec,
    params: &MachineDescriptor,
    efficiency: f64,
    detail: &str,
) -> BaselineResult {
    let report = unfused_time(chain, params, efficiency);
    BaselineResult {
        name,
        seconds: report.seconds,
        global_bytes: report.global_bytes,
        fused: false,
        detail: detail.to_string(),
    }
}

macro_rules! unfused_policy {
    ($(#[$doc:meta])* $name:ident, $label:literal, $eff:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            params: MachineDescriptor,
        }

        impl $name {
            /// Creates the policy.
            pub fn new(params: MachineDescriptor) -> Self {
                Self { params }
            }
        }

        impl Baseline for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn run(&self, chain: &ChainSpec) -> BaselineResult {
                unfused_result($label, chain, &self.params, $eff, "one kernel per op")
            }
        }
    };
}

unfused_policy!(
    /// PyTorch 2.6 with `torch.compile`: cuBLAS GEMMs, one kernel per
    /// operator, activation folded into the producer epilogue.
    PyTorchPolicy,
    "PyTorch",
    0.90
);

unfused_policy!(
    /// NVIDIA TensorRT: best-in-class kernel selection, still no
    /// GEMM-chain fusion.
    TensorRtPolicy,
    "TensorRT",
    0.95
);

unfused_policy!(
    /// TVM/Relay: compute+activation fusion only, generated GEMMs well
    /// below cuBLAS.
    RelayPolicy,
    "Relay",
    0.62
);

/// TASO: graph substitution. For gated chains it merges the two parallel
/// up-projection GEMMs into one wide GEMM (halving A reads and one
/// launch); it cannot fuse *sequential* GEMMs.
#[derive(Debug, Clone)]
pub struct TasoPolicy {
    params: MachineDescriptor,
}

impl TasoPolicy {
    /// Creates the policy.
    pub fn new(params: MachineDescriptor) -> Self {
        Self { params }
    }
}

impl Baseline for TasoPolicy {
    fn name(&self) -> &'static str {
        "TASO"
    }

    fn run(&self, chain: &ChainSpec) -> BaselineResult {
        const EFF: f64 = 0.80;
        if chain.kind().is_gated() {
            // Substituted graph: one [M,K]x[K,2N] GEMM + act/mul kernel +
            // the second GEMM. Compared to the naive 4-kernel pipeline it
            // saves one launch and one pass over A.
            let d = chain.dims();
            let wide_gemm_bytes =
                d.a_bytes_f16() + 2 * d.b_bytes_f16() + 2 * d.intermediate_bytes_f16();
            let actmul_bytes = 3 * d.intermediate_bytes_f16();
            let gemm1_bytes = d.intermediate_bytes_f16() + d.d_bytes_f16() + d.e_bytes_f16();
            let p = &self.params;
            let kernel = |flops: f64, bytes: u64| {
                (flops / (p.peak_flops() * EFF)).max(bytes as f64 / (p.hbm_bw() * EFF))
                    + p.kernel_launch_s()
            };
            let seconds = kernel(2.0 * d.gemm0_flops() as f64, wide_gemm_bytes)
                + kernel(d.intermediate_bytes_f16() as f64, actmul_bytes)
                + kernel(d.gemm1_flops() as f64, gemm1_bytes);
            BaselineResult {
                name: "TASO",
                seconds,
                global_bytes: wide_gemm_bytes + actmul_bytes + gemm1_bytes,
                fused: false,
                detail: "merged parallel branches into one wide GEMM".to_string(),
            }
        } else {
            unfused_result("TASO", chain, &self.params, EFF, "no substitution applies")
        }
    }
}

/// BOLT: CUTLASS-template fusion in registers/SMEM with the template's
/// *fixed* loop order (`M` spatial, `N` outer, `K` innermost) and a fixed
/// tile menu. No cluster support, no atomic split-N. Falls back to
/// unfused CUTLASS kernels (eff 0.85) when no template fits.
#[derive(Debug, Clone)]
pub struct BoltPolicy {
    params: MachineDescriptor,
    engine: SearchEngine,
}

impl BoltPolicy {
    /// Creates the policy.
    pub fn new(params: MachineDescriptor) -> Self {
        let engine = SearchEngine::new(params.clone());
        Self { params, engine }
    }
}

impl Baseline for BoltPolicy {
    fn name(&self) -> &'static str {
        "BOLT"
    }

    fn run(&self, chain: &ChainSpec) -> BaselineResult {
        // BOLT's template library fixes the block execution order; its
        // manual tuning explores tiles but nothing else (§III). Model:
        // SMEM-bounded search restricted to a single schedule by
        // profiling with top_k = 1 (no cost-model reranking of orders).
        let config = SearchConfig {
            top_k: 1,
            prune: PruneConfig {
                max_cluster: 1,
                lowest_spill: MemLevel::Smem,
                allow_inter_cluster_reduce: false,
            },
            ..SearchConfig::default()
        };
        let mut profiler = SimProfiler::with_analyzer(
            flashfuser_core::DataflowAnalyzer::new(self.params.clone())
                .with_lowest_spill(MemLevel::Smem)
                .with_inter_cluster_reduce(false),
        );
        let fallback = unfused_time(chain, &self.params, 0.85);
        match self
            .engine
            .search_with_profiler(chain, &config, &mut profiler)
        {
            Ok(result) => {
                let m = result.best().measured.unwrap();
                // A fused template only ships if it beats the unfused
                // CUTLASS pair; otherwise BOLT abandons fusion (§VI-B
                // "when the problem sizes become large, BOLT abandons
                // fusion").
                if m.seconds < fallback.seconds {
                    BaselineResult {
                        name: "BOLT",
                        seconds: m.seconds,
                        global_bytes: m.global_bytes,
                        fused: true,
                        detail: result.best().analysis.plan().summary(),
                    }
                } else {
                    BaselineResult {
                        name: "BOLT",
                        seconds: fallback.seconds,
                        global_bytes: fallback.global_bytes,
                        fused: false,
                        detail: "fused template slower than unfused pair".to_string(),
                    }
                }
            }
            Err(_) => BaselineResult {
                name: "BOLT",
                seconds: fallback.seconds,
                global_bytes: fallback.global_bytes,
                fused: false,
                detail: "no feasible template".to_string(),
            },
        }
    }
}

/// Shared implementation of the SMEM-only analytical fusers (Chimera,
/// MCFuser, Mirage): fusion is feasible only while the whole
/// intermediate fits in one SM's shared memory (the paper's Fig. 5
/// criterion); above that the system falls back to unfused kernels.
fn smem_fuser(
    name: &'static str,
    chain: &ChainSpec,
    params: &MachineDescriptor,
    engine: &SearchEngine,
    fused_scale: f64,
    fallback_eff: f64,
) -> BaselineResult {
    let intermediate = chain.dims().intermediate_bytes_f16();
    let budget = params.smem_bytes_per_sm();
    if intermediate <= budget {
        let config = SearchConfig::smem_only();
        let mut profiler = SimProfiler::with_analyzer(
            flashfuser_core::DataflowAnalyzer::new(params.clone())
                .with_lowest_spill(MemLevel::Smem)
                .with_inter_cluster_reduce(false),
        );
        if let Ok(result) = engine.search_with_profiler(chain, &config, &mut profiler) {
            let m = result.best().measured.unwrap();
            return BaselineResult {
                name,
                seconds: m.seconds * fused_scale,
                global_bytes: m.global_bytes,
                fused: true,
                detail: result.best().analysis.plan().summary(),
            };
        }
    }
    let fallback = unfused_time(chain, params, fallback_eff);
    BaselineResult {
        name,
        seconds: fallback.seconds,
        global_bytes: fallback.global_bytes,
        fused: false,
        detail: format!(
            "fusion failed: intermediate {} KB > {} KB SMEM",
            intermediate / 1024,
            budget / 1024
        ),
    }
}

macro_rules! smem_fuser_policy {
    ($(#[$doc:meta])* $name:ident, $label:literal, $fused_scale:literal, $fallback:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            params: MachineDescriptor,
            engine: SearchEngine,
        }

        impl $name {
            /// Creates the policy.
            pub fn new(params: MachineDescriptor) -> Self {
                let engine = SearchEngine::new(params.clone());
                Self { params, engine }
            }
        }

        impl Baseline for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn run(&self, chain: &ChainSpec) -> BaselineResult {
                smem_fuser($label, chain, &self.params, &self.engine, $fused_scale, $fallback)
            }
        }
    };
}

smem_fuser_policy!(
    /// Chimera (HPCA'23): analytical SMEM fusion with block reordering;
    /// fails outright above the SMEM capacity (Fig. 5) and falls back to
    /// TVM-class unfused kernels.
    ChimeraPolicy,
    "Chimera",
    1.0,
    0.80
);

smem_fuser_policy!(
    /// MCFuser (SC'24): as Chimera with faster tuning and a CUTLASS-class
    /// unfused fallback.
    McFuserPolicy,
    "MCFuser",
    1.0,
    0.85
);

smem_fuser_policy!(
    /// Mirage: a superoptimizer over SMEM-level fused kernels — slightly
    /// better generated code than the analytical fusers (x0.95) and a
    /// near-cuBLAS fallback.
    MiragePolicy,
    "Mirage",
    0.95,
    0.92
);

smem_fuser_policy!(
    /// Welder (OSDI'23): tile-graph scheduling over registers + SMEM
    /// (Table II hierarchy "0/1"); same capacity envelope as the other
    /// single-SM fusers, with a solid unfused fallback.
    WelderPolicy,
    "Welder",
    0.98,
    0.85
);

/// PipeThreader: no kernel fusion, but dependent kernels are pipelined
/// at tile granularity so the second GEMM starts while the first drains
/// — modelled as hiding 25 % of the serialised unfused time. Traffic is
/// unchanged (the intermediate still round-trips).
#[derive(Debug, Clone)]
pub struct PipeThreaderPolicy {
    params: MachineDescriptor,
}

impl PipeThreaderPolicy {
    /// Creates the policy.
    pub fn new(params: MachineDescriptor) -> Self {
        Self { params }
    }
}

impl Baseline for PipeThreaderPolicy {
    fn name(&self) -> &'static str {
        "PipeThreader"
    }

    fn run(&self, chain: &ChainSpec) -> BaselineResult {
        let report = unfused_time(chain, &self.params, 0.90);
        BaselineResult {
            name: "PipeThreader",
            seconds: report.seconds * 0.75,
            global_bytes: report.global_bytes,
            fused: false,
            detail: "inter-kernel pipelining, intermediate still round-trips".to_string(),
        }
    }
}

/// FlashFuser itself: the full DSM-aware search of `flashfuser-core`
/// profiled on the simulator (Algorithm 2 end to end).
#[derive(Debug, Clone)]
pub struct FlashFuserPolicy {
    params: MachineDescriptor,
    engine: SearchEngine,
    config: SearchConfig,
}

impl FlashFuserPolicy {
    /// Creates the policy with the paper's `K = 11`. The cluster limit
    /// (and hence DSM availability) follows the target device: 16 on
    /// H100, 1 on the A100 preset.
    pub fn new(params: MachineDescriptor) -> Self {
        let engine = SearchEngine::new(params.clone());
        let mut config = SearchConfig::default();
        config.prune.max_cluster = params.max_cluster();
        if params.max_cluster() <= 1 {
            // Pre-Hopper: no DSM pool to spill into.
            config.prune.lowest_spill = MemLevel::Smem;
        }
        Self {
            params,
            engine,
            config,
        }
    }

    /// Overrides the search configuration (used by ablations).
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }
}

impl Baseline for FlashFuserPolicy {
    fn name(&self) -> &'static str {
        "FlashFuser"
    }

    fn run(&self, chain: &ChainSpec) -> BaselineResult {
        let mut profiler = SimProfiler::new(self.params.clone());
        // The runtime keeps the unfused path as a per-M-bin fallback
        // (§IV-C3 binning); a fused kernel only ships when it wins.
        let fallback = unfused_time(chain, &self.params, 0.90);
        match self
            .engine
            .search_with_profiler(chain, &self.config, &mut profiler)
        {
            Ok(result) => {
                let m = result.best().measured.unwrap();
                if m.seconds < fallback.seconds {
                    return BaselineResult {
                        name: "FlashFuser",
                        seconds: m.seconds,
                        global_bytes: m.global_bytes,
                        fused: true,
                        detail: result.best().analysis.plan().summary(),
                    };
                }
                BaselineResult {
                    name: "FlashFuser",
                    seconds: fallback.seconds,
                    global_bytes: fallback.global_bytes,
                    fused: false,
                    detail: "fused plan slower than unfused".to_string(),
                }
            }
            Err(_) => BaselineResult {
                name: "FlashFuser",
                seconds: fallback.seconds,
                global_bytes: fallback.global_bytes,
                fused: false,
                detail: "no feasible fused plan".to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashfuser_tensor::Activation;

    fn params() -> MachineDescriptor {
        MachineDescriptor::h100_sxm()
    }

    /// OPT-1.3B (G8): the large-intermediate regime.
    fn big_chain() -> ChainSpec {
        ChainSpec::standard_ffn(128, 8192, 2048, 2048, Activation::Relu)
    }

    /// DLRM-0 (G1): the small regime where SMEM fusion works.
    fn small_chain() -> ChainSpec {
        ChainSpec::standard_ffn(128, 512, 32, 256, Activation::Relu)
    }

    #[test]
    fn flashfuser_beats_every_baseline_on_big_chains() {
        let p = params();
        let ff = FlashFuserPolicy::new(p.clone()).run(&big_chain());
        assert!(ff.fused);
        for baseline in crate::suite(&p) {
            if baseline.name() == "FlashFuser" {
                continue;
            }
            let r = baseline.run(&big_chain());
            assert!(
                ff.seconds < r.seconds,
                "FlashFuser {:.2}us should beat {} {:.2}us",
                ff.seconds * 1e6,
                r.name,
                r.seconds * 1e6
            );
        }
    }

    #[test]
    fn chimera_fuses_small_fails_big() {
        let p = params();
        let chimera = ChimeraPolicy::new(p);
        let small = chimera.run(&small_chain());
        assert!(small.fused, "{small:?}");
        let big = chimera.run(&big_chain());
        assert!(!big.fused, "{big:?}");
        assert!(big.detail.contains("fusion failed"));
    }

    #[test]
    fn tensorrt_fastest_unfused_library() {
        let p = params();
        let trt = TensorRtPolicy::new(p.clone()).run(&big_chain());
        let torch = PyTorchPolicy::new(p.clone()).run(&big_chain());
        let relay = RelayPolicy::new(p).run(&big_chain());
        assert!(trt.seconds < torch.seconds);
        assert!(torch.seconds < relay.seconds);
        assert_eq!(trt.global_bytes, torch.global_bytes);
    }

    #[test]
    fn taso_substitution_helps_gated_only() {
        let p = params();
        let taso = TasoPolicy::new(p.clone());
        let gated = ChainSpec::gated_ffn(128, 8192, 2048, 2048, Activation::Silu);
        let merged = taso.run(&gated);
        assert!(merged.detail.contains("merged"));
        // The wide-GEMM substitution reads A once instead of twice.
        let naive = unfused_time(&gated, &p, 0.80);
        assert!(merged.seconds < naive.seconds);
        assert!(merged.global_bytes < naive.global_bytes);
        // Standard chains: no substitution applies.
        let std = taso.run(&big_chain());
        assert!(std.detail.contains("no substitution"));
    }

    #[test]
    fn bolt_abandons_fusion_when_unprofitable() {
        let p = params();
        let bolt = BoltPolicy::new(p);
        // M=128 chains leave BOLT's templates (no clusters, no atomic
        // split-N) with at most M/16 = 8 blocks — fusion cannot fill the
        // GPU and BOLT ships the unfused pair (§VI-B: "when the problem
        // sizes become large, BOLT abandons fusion").
        let big = bolt.run(&big_chain());
        assert!(!big.fused, "{big:?}");
        // Conv chains have M = H*W = 3136: plenty of grid-spatial
        // parallelism, so the fused template wins.
        let conv = flashfuser_graph::ConvChainSpec::new(64, 56, 56, 256, 64, 1, 1).to_chain();
        let small = bolt.run(&conv);
        assert!(small.fused, "{small:?}");
    }

    #[test]
    fn pipethreader_faster_than_torch_same_traffic() {
        let p = params();
        let pt = PipeThreaderPolicy::new(p.clone()).run(&big_chain());
        let torch = PyTorchPolicy::new(p).run(&big_chain());
        assert!(pt.seconds < torch.seconds);
        assert_eq!(pt.global_bytes, torch.global_bytes);
        assert!(!pt.fused);
    }

    #[test]
    fn flashfuser_reduces_traffic_vs_pytorch() {
        // The Fig. 11 claim: PyTorch moves ~2.4x more global data.
        let p = params();
        let ff = FlashFuserPolicy::new(p.clone()).run(&big_chain());
        let torch = PyTorchPolicy::new(p).run(&big_chain());
        let ratio = torch.global_bytes as f64 / ff.global_bytes as f64;
        assert!(ratio > 1.3, "traffic ratio {ratio}");
    }

    #[test]
    fn welder_envelope_matches_chimera_cliff() {
        let p = params();
        let welder = WelderPolicy::new(p);
        assert!(welder.run(&small_chain()).fused);
        let big = welder.run(&big_chain());
        assert!(!big.fused);
        assert!(big.detail.contains("fusion failed"));
    }

    #[test]
    fn suite_has_eight_systems() {
        let systems = crate::suite(&params());
        assert_eq!(systems.len(), 8);
        let names: Vec<_> = systems.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"FlashFuser"));
        assert!(names.contains(&"Chimera"));
    }

    #[test]
    fn speedup_over_is_ratio() {
        let a = BaselineResult {
            name: "a",
            seconds: 1.0,
            global_bytes: 0,
            fused: true,
            detail: String::new(),
        };
        let b = BaselineResult {
            name: "b",
            seconds: 2.0,
            global_bytes: 0,
            fused: false,
            detail: String::new(),
        };
        assert_eq!(a.speedup_over(&b), 2.0);
        assert!(b.to_string().contains("unfused"));
    }
}
