//! Baseline systems, re-implemented as scheduling policies over the
//! simulator.
//!
//! The paper compares FlashFuser against libraries (PyTorch/cuBLAS,
//! TensorRT), compilers (Relay, TASO, BOLT, Chimera, MCFuser), research
//! systems (Mirage, PipeThreader) and the SGLang serving stack. None of
//! those run here; each is modelled by its *documented capability
//! envelope* on the same machine model:
//!
//! | policy | capability envelope |
//! |---|---|
//! | PyTorch | one kernel per op, cuBLAS-class GEMMs (eff 0.90) |
//! | TensorRT | one kernel per op, best-in-class selection (eff 0.95) |
//! | Relay | one kernel per op, generated GEMMs (eff 0.62) |
//! | TASO | graph substitution (merges gated branches), no GEMM-chain fusion (eff 0.80) |
//! | BOLT | reg/SMEM fusion, fixed CUTLASS loop order + tile menu |
//! | Chimera | SMEM-only analytical fusion; *fails* when the intermediate exceeds 227 KB (Fig. 5) |
//! | MCFuser | as Chimera with a better unfused fallback |
//! | Mirage | SMEM-fusion superoptimizer, strong fallback |
//! | PipeThreader | no fusion, but overlaps dependent kernels |
//! | FlashFuser | the full DSM search of `flashfuser-core` |
//!
//! The per-policy `efficiency` constants are calibrated once against the
//! relative baseline gaps the paper reports (§VI-B) and recorded in
//! DESIGN.md; everything structural (who can fuse what, where
//! intermediates live, when fusion fails) is derived, not fitted.

pub mod ablation;
pub mod policies;

pub use ablation::{run_ablation, AblationVariant};
pub use policies::{
    Baseline, BaselineResult, BoltPolicy, ChimeraPolicy, FlashFuserPolicy, McFuserPolicy,
    MiragePolicy, PipeThreaderPolicy, PyTorchPolicy, RelayPolicy, TasoPolicy, TensorRtPolicy,
    WelderPolicy,
};

use flashfuser_core::MachineDescriptor;

/// The full Fig. 10 comparison suite, in the paper's plotting order.
pub fn suite(params: &MachineDescriptor) -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(BoltPolicy::new(params.clone())),
        Box::new(FlashFuserPolicy::new(params.clone())),
        Box::new(RelayPolicy::new(params.clone())),
        Box::new(TasoPolicy::new(params.clone())),
        Box::new(TensorRtPolicy::new(params.clone())),
        Box::new(PyTorchPolicy::new(params.clone())),
        Box::new(ChimeraPolicy::new(params.clone())),
        Box::new(McFuserPolicy::new(params.clone())),
    ]
}
