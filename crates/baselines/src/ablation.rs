//! The Fig. 15 ablation: isolating `dsm_comm` (DC), the dataflow
//! analyzer (DA) and the search engine (SE).
//!
//! * `NoFusion` — the unfused baseline (1x reference).
//! * `Da` — analyzer-guided fusion *without DSM*: intermediates may only
//!   use SMEM or spill to global memory (the paper's "using only
//!   SMEM/global memory for fusion"); paper: 1.52x.
//! * `DcDa` — DSM primitives + analyzer but a *random* feasible
//!   configuration instead of the search engine ("using a random
//!   configuration"); paper: 2.11x.
//! * `All` — the full system; paper: 3.29x.

use crate::policies::BaselineResult;
use flashfuser_core::{
    DataflowAnalyzer, MachineDescriptor, MemLevel, PruneConfig, SearchConfig, SearchEngine,
};
use flashfuser_graph::ChainSpec;
use flashfuser_sim::{unfused_time, SimProfiler, TimingModel};

/// Which ablation variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// Unfused reference.
    NoFusion,
    /// Dataflow analyzer only (SMEM/global spill, no clusters).
    Da,
    /// DSM + analyzer, random configuration (no search engine).
    DcDa,
    /// The full system.
    All,
}

impl AblationVariant {
    /// All variants in the figure's order.
    pub const ALL: [AblationVariant; 4] = [
        AblationVariant::NoFusion,
        AblationVariant::Da,
        AblationVariant::DcDa,
        AblationVariant::All,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            AblationVariant::NoFusion => "No Fusion",
            AblationVariant::Da => "DA",
            AblationVariant::DcDa => "DC+DA",
            AblationVariant::All => "All",
        }
    }
}

/// Runs one ablation variant on one chain.
pub fn run_ablation(
    variant: AblationVariant,
    chain: &ChainSpec,
    params: &MachineDescriptor,
) -> BaselineResult {
    let engine = SearchEngine::new(params.clone());
    match variant {
        AblationVariant::NoFusion => {
            let r = unfused_time(chain, params, 0.90);
            BaselineResult {
                name: variant.label(),
                seconds: r.seconds,
                global_bytes: r.global_bytes,
                fused: false,
                detail: "unfused reference".to_string(),
            }
        }
        AblationVariant::Da => {
            // Analyzer-guided fusion constrained to one SM: the strip may
            // spill to global memory (costed), but no DSM pool exists and
            // no Hopper-only atomic reduce path either.
            let config = SearchConfig {
                top_k: 11,
                prune: PruneConfig {
                    max_cluster: 1,
                    lowest_spill: MemLevel::Global,
                    allow_inter_cluster_reduce: false,
                },
                ..SearchConfig::default()
            };
            let analyzer = DataflowAnalyzer::new(params.clone())
                .with_lowest_spill(MemLevel::Global)
                .with_inter_cluster_reduce(false);
            let mut profiler = SimProfiler::with_analyzer(analyzer);
            run_search(variant, chain, params, &engine, &config, &mut profiler)
        }
        AblationVariant::DcDa => {
            // DSM available, but no cost-model search: take a "random"
            // (first feasible under a deterministic mid-space probe)
            // configuration. Modelled by ranking with top_k = 1 over a
            // restricted enumeration seeded mid-space: we approximate by
            // profiling the *median* of the top-K list instead of the
            // best.
            let config = SearchConfig::default();
            let mut profiler = SimProfiler::new(params.clone());
            match engine.search(chain, &config) {
                Ok(result) => {
                    let timer = TimingModel::new(params.clone());
                    // Median-ranked candidate stands in for a random pick.
                    let mid = result.top_k().len() / 2;
                    let plan = result.top_k()[mid].analysis.plan().clone();
                    let m = profiler.measure(&plan);
                    // A random pick across the whole feasible space is
                    // worse than the median of the cost-model's top-K;
                    // derate by the observed top-K spread.
                    let worst = result
                        .top_k()
                        .iter()
                        .map(|p| timer.time_analysis(&p.analysis).seconds)
                        .fold(0.0, f64::max);
                    let seconds = m.seconds.max(worst);
                    BaselineResult {
                        name: variant.label(),
                        seconds,
                        global_bytes: m.global_bytes,
                        fused: true,
                        detail: format!("random configuration: {}", plan.summary()),
                    }
                }
                Err(_) => {
                    let r = unfused_time(chain, params, 0.90);
                    BaselineResult {
                        name: variant.label(),
                        seconds: r.seconds,
                        global_bytes: r.global_bytes,
                        fused: false,
                        detail: "no feasible plan".to_string(),
                    }
                }
            }
        }
        AblationVariant::All => {
            let config = SearchConfig::default();
            let mut profiler = SimProfiler::new(params.clone());
            run_search(variant, chain, params, &engine, &config, &mut profiler)
        }
    }
}

fn run_search(
    variant: AblationVariant,
    chain: &ChainSpec,
    params: &MachineDescriptor,
    engine: &SearchEngine,
    config: &SearchConfig,
    profiler: &mut SimProfiler,
) -> BaselineResult {
    // Every variant keeps the unfused path as a fallback and ships
    // whichever is faster — fusing at a loss would be a compiler bug.
    let fallback = unfused_time(chain, params, 0.90);
    match engine.search_with_profiler(chain, config, profiler) {
        Ok(result) => {
            let m = result.best().measured.unwrap();
            if m.seconds < fallback.seconds {
                BaselineResult {
                    name: variant.label(),
                    seconds: m.seconds,
                    global_bytes: m.global_bytes,
                    fused: true,
                    detail: result.best().analysis.plan().summary(),
                }
            } else {
                BaselineResult {
                    name: variant.label(),
                    seconds: fallback.seconds,
                    global_bytes: fallback.global_bytes,
                    fused: false,
                    detail: "fused plan slower than unfused".to_string(),
                }
            }
        }
        Err(_) => BaselineResult {
            name: variant.label(),
            seconds: fallback.seconds,
            global_bytes: fallback.global_bytes,
            fused: false,
            detail: "no feasible plan".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashfuser_tensor::Activation;

    #[test]
    fn ablation_ordering_matches_fig15() {
        // Adding components never hurts (each variant keeps the unfused
        // fallback) and the full system is strictly fastest — the Fig. 15
        // averages over all 18 workloads are produced by the bench
        // binary; on one large chain the DA step may tie the baseline
        // (its only parallelism source, grid-spatial M, cannot fill the
        // GPU at M=128).
        let chain = ChainSpec::standard_ffn(128, 8192, 2048, 2048, Activation::Relu);
        let p = MachineDescriptor::h100_sxm();
        let times: Vec<f64> = AblationVariant::ALL
            .iter()
            .map(|&v| run_ablation(v, &chain, &p).seconds)
            .collect();
        assert!(
            times[0] >= times[1] && times[1] >= times[2] && times[2] >= times[3],
            "expected non-increasing times, got {times:?}"
        );
        let speedup_all = times[0] / times[3];
        assert!(
            speedup_all > 1.5,
            "full system speedup {speedup_all} too small"
        );
        // DC (DSM) must contribute on this chain: with clusters the
        // random-config variant already beats the best DSM-less variant.
        assert!(times[2] < times[1]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AblationVariant::DcDa.label(), "DC+DA");
        assert_eq!(AblationVariant::ALL.len(), 4);
    }
}
