//! End-to-end inference timing (Figs. 16(b) and 17).
//!
//! One layer = attention + FFN + element-wise remainder. The serving
//! baseline (SGLang-class) runs the FFN as tuned-but-unfused kernels
//! (eff 0.92); the FlashFuser configuration replaces only the FFN with
//! the searched fused kernel. Everything else is identical, so the E2E
//! speedup is the Amdahl composition of the kernel-level gain with the
//! FFN time share — exactly how the paper's 1.24x arises from 3.3x
//! kernel speedups.

use crate::models::ModelSpec;
use flashfuser_baselines::{Baseline, FlashFuserPolicy};
use flashfuser_core::MachineDescriptor;
use flashfuser_sim::unfused_time;

/// End-to-end comparison for one model and token count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2eReport {
    /// Tokens in flight (`batch x seq`).
    pub m: usize,
    /// Per-layer baseline seconds (SGLang-class).
    pub baseline_layer_s: f64,
    /// Per-layer FlashFuser seconds.
    pub flashfuser_layer_s: f64,
    /// Kernel-level FFN speedup.
    pub ffn_speedup: f64,
    /// End-to-end speedup (whole model; layers are homogeneous).
    pub speedup: f64,
}

/// Non-FFN time of one layer (attention + element-wise remainder),
/// shared by both systems.
fn non_ffn_layer_time(model: &ModelSpec, m: usize, params: &MachineDescriptor) -> f64 {
    let attn_flops = model.attention_flops(m, m) as f64;
    let attn_bytes = model.attention_bytes(m, m) as f64;
    let attn = (attn_flops / (params.peak_flops() * 0.92))
        .max(attn_bytes / (params.hbm_bw() * 0.92))
        + 6.0 * params.kernel_launch_s();
    let misc_bytes = (4 * m as u64 * model.hidden as u64 * 2) as f64;
    attn + misc_bytes / (params.hbm_bw() * 0.92) + 2.0 * params.kernel_launch_s()
}

/// Computes the end-to-end speedup of FlashFuser over the serving
/// baseline for `model` with `m` tokens in flight.
pub fn e2e_speedup(model: &ModelSpec, m: usize, params: &MachineDescriptor) -> E2eReport {
    let chain = model.ffn_chain(m);
    let baseline_ffn = unfused_time(&chain, params, 0.92).seconds;
    let ff = FlashFuserPolicy::new(params.clone()).run(&chain);
    // FlashFuser never ships a fused kernel slower than the baseline's
    // unfused FFN (binning falls back per M bucket, §IV-C3).
    let ff_ffn = ff.seconds.min(baseline_ffn);
    let shared = non_ffn_layer_time(model, m, params);
    let baseline_layer_s = shared + baseline_ffn;
    let flashfuser_layer_s = shared + ff_ffn;
    E2eReport {
        m,
        baseline_layer_s,
        flashfuser_layer_s,
        ffn_speedup: baseline_ffn / ff_ffn,
        speedup: baseline_layer_s / flashfuser_layer_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{large_model_zoo, model_zoo};

    #[test]
    fn e2e_speedup_is_amdahl_bounded() {
        // E2E speedup must be positive, above 1 (fallback guarantees it)
        // and strictly below the kernel-level FFN speedup.
        let p = MachineDescriptor::h100_sxm();
        let gpt = &model_zoo()[0];
        let r = e2e_speedup(gpt, 128, &p);
        assert!(r.speedup >= 1.0);
        assert!(r.ffn_speedup >= r.speedup);
        assert!(r.ffn_speedup > 1.05, "FFN kernel should win: {r:?}");
    }

    #[test]
    fn large_models_gain_less_at_high_batch() {
        // Fig. 16: at large m the FFN becomes compute-bound and the
        // fusion headroom shrinks.
        let p = MachineDescriptor::h100_sxm();
        let model = &large_model_zoo()[1]; // Qwen2.5-14B
        let small = e2e_speedup(model, 256, &p);
        let large = e2e_speedup(model, 4096, &p);
        assert!(
            large.speedup <= small.speedup + 1e-9,
            "small {} vs large {}",
            small.speedup,
            large.speedup
        );
    }
}
