//! Roofline analysis (Fig. 16(a)).
//!
//! For each large model and token count, the FFN's arithmetic intensity
//! (FLOP per global byte of the fused execution) is compared against the
//! machine balance; attainable performance is
//! `min(peak, intensity x peak-HBM-bandwidth)`. The paper uses this to
//! show that the large-model / large-batch regime is compute-bound and
//! therefore offers little fusion headroom.

use crate::models::ModelSpec;
use flashfuser_core::MachineDescriptor;

/// One roofline point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Tokens in flight.
    pub m: usize,
    /// Arithmetic intensity, FLOP/byte.
    pub intensity: f64,
    /// Attainable performance, TFLOP/s.
    pub attainable_tflops: f64,
    /// `true` when the point sits on the compute roof.
    pub compute_bound: bool,
}

/// Computes the roofline point of a model's FFN at `m` tokens.
pub fn roofline_point(model: &ModelSpec, m: usize, params: &MachineDescriptor) -> RooflinePoint {
    let chain = model.ffn_chain(m);
    let intensity = chain.fused_arithmetic_intensity();
    let bw_roof = intensity * params.hbm_peak_bw();
    let attainable = bw_roof.min(params.peak_flops());
    RooflinePoint {
        m,
        intensity,
        attainable_tflops: attainable / 1e12,
        compute_bound: bw_roof >= params.peak_flops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::large_model_zoo;

    #[test]
    fn intensity_grows_with_tokens() {
        let p = MachineDescriptor::h100_sxm();
        let model = &large_model_zoo()[0];
        let points: Vec<_> = [256, 512, 1024, 4096]
            .iter()
            .map(|&m| roofline_point(model, m, &p))
            .collect();
        for w in points.windows(2) {
            assert!(w[1].intensity > w[0].intensity);
        }
    }

    #[test]
    fn large_batch_is_compute_bound() {
        // Fig. 16(a): the large-model serving points are mostly
        // compute-bound — crossing the ridge somewhere below m = 1k.
        let p = MachineDescriptor::h100_sxm();
        let model = &large_model_zoo()[0];
        assert!(!roofline_point(model, 128, &p).compute_bound);
        let big = roofline_point(model, 2048, &p);
        assert!(big.compute_bound, "{big:?}");
        assert!((big.attainable_tflops - p.peak_flops() / 1e12).abs() < 1e-9);
    }
}
