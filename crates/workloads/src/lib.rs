//! The paper's workloads and end-to-end models.
//!
//! * [`tables`] — the exact subgraph configurations of Tables V
//!   (conv chains C1–C8), VI (gated FFNs S1–S8) and VII (GEMM chains
//!   G1–G10).
//! * [`models`] — the transformer model zoo (GPT, LLaMA, OPT, BERT,
//!   Qwen) with layer shapes, used for Table I and the end-to-end
//!   evaluation; [`ModelSpec::graph`] lowers whole decoder layers into
//!   operator DAGs for whole-graph compilation.
//! * [`ffn_share`] — the Table I estimator: fraction of inference time
//!   spent in FFN layers.
//! * [`e2e`] — the end-to-end inference timing model behind Figs. 16/17.
//! * [`roofline`] — arithmetic-intensity analysis for Fig. 16(a).

pub mod e2e;
pub mod ffn_share;
pub mod models;
pub mod roofline;
pub mod tables;

pub use e2e::{e2e_speedup, E2eReport};
pub use ffn_share::ffn_time_share;
pub use models::{find_model, large_model_zoo, model_zoo, ModelSpec};
pub use tables::{all_workloads, conv_chains, gated_ffn_chains, gemm_chains, Workload};
