//! The subgraph configurations of Tables V, VI and VII.

use flashfuser_graph::{ChainSpec, ConvChainSpec};
use flashfuser_tensor::Activation;

/// A named workload: the chain plus the model it came from.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper id (`"G5"`, `"C3"`, `"S1"`, ...).
    pub id: &'static str,
    /// Source model named in the paper.
    pub model: &'static str,
    /// The chain.
    pub chain: ChainSpec,
}

/// Table VII: GEMM chains G1–G10 (`GEMM1 = m x n x k`,
/// `GEMM2 = m x l x n`).
pub fn gemm_chains() -> Vec<Workload> {
    let rows: [(&str, &str, usize, usize, usize, usize); 10] = [
        ("G1", "DLRM-0", 128, 512, 32, 256),
        ("G2", "DLRM-1", 128, 256, 512, 64),
        ("G3", "DLRM-2", 128, 512, 416, 256),
        ("G4", "GPT-2-Small", 128, 3072, 768, 768),
        ("G5", "GPT-6.7B", 128, 16384, 4096, 4096),
        ("G6", "GPT2-medium", 128, 4096, 1024, 1024),
        ("G7", "nlp_gpt3_base", 128, 768, 768, 768),
        ("G8", "OPT-1.3B", 128, 8192, 2048, 2048),
        ("G9", "Performer", 128, 2048, 512, 512),
        ("G10", "BERT", 128, 1536, 384, 384),
    ];
    rows.iter()
        .map(|&(id, model, m, n, k, l)| Workload {
            id,
            model,
            chain: ChainSpec::standard_ffn(m, n, k, l, Activation::Relu).named(id),
        })
        .collect()
}

/// One Table V row: `(id, in_ch, h, w, out_ch1, out_ch2, k1, k2)`.
type ConvRow = (
    &'static str,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

/// Table V: convolution chains C1–C8 from ResNet blocks, lowered to GEMM
/// chains via im2col.
pub fn conv_chains() -> Vec<Workload> {
    let rows: [ConvRow; 8] = [
        ("C1", 64, 56, 56, 256, 64, 1, 1),
        ("C2", 128, 28, 28, 512, 128, 1, 1),
        ("C3", 256, 14, 14, 1024, 256, 1, 1),
        ("C4", 512, 7, 7, 2048, 512, 1, 1),
        ("C5", 64, 56, 56, 64, 256, 3, 1),
        ("C6", 128, 28, 28, 128, 512, 3, 1),
        ("C7", 256, 14, 14, 256, 1024, 3, 1),
        ("C8", 512, 7, 7, 512, 2048, 3, 1),
    ];
    rows.iter()
        .map(|&(id, ic, h, w, oc1, oc2, k1, k2)| Workload {
            id,
            model: "ResNet",
            chain: ConvChainSpec::new(ic, h, w, oc1, oc2, k1, k2)
                .to_chain()
                .named(id),
        })
        .collect()
}

/// Table VI: gated FFNs S1–S8 (SwiGLU).
pub fn gated_ffn_chains() -> Vec<Workload> {
    let rows: [(&str, &str, usize, usize, usize, usize); 8] = [
        ("S1", "llama-3.2-3B", 128, 8192, 3072, 3072),
        ("S2", "llama-1.1B", 128, 5632, 2048, 2048),
        ("S3", "Llama-2-7b", 128, 11008, 4096, 4096),
        ("S4", "Qwen2.5-2.1B", 128, 8192, 2048, 2048),
        ("S5", "Qwen2.5-3B", 128, 11008, 2048, 2048),
        ("S6", "Qwen2.5-1.5B", 128, 8960, 1536, 1536),
        ("S7", "Qwen3-4B", 128, 9728, 2560, 2560),
        ("S8", "Qwen3-0.6B", 128, 3072, 1024, 1024),
    ];
    rows.iter()
        .map(|&(id, model, m, n, k, l)| Workload {
            id,
            model,
            chain: ChainSpec::gated_ffn(m, n, k, l, Activation::Silu).named(id),
        })
        .collect()
}

/// All 26 subgraph workloads (G + C + S).
pub fn all_workloads() -> Vec<Workload> {
    let mut v = gemm_chains();
    v.extend(conv_chains());
    v.extend(gated_ffn_chains());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_counts() {
        assert_eq!(gemm_chains().len(), 10);
        assert_eq!(conv_chains().len(), 8);
        assert_eq!(gated_ffn_chains().len(), 8);
        assert_eq!(all_workloads().len(), 26);
    }

    #[test]
    fn g5_is_gpt67b() {
        let g5 = &gemm_chains()[4];
        assert_eq!(g5.id, "G5");
        let d = g5.chain.dims();
        assert_eq!((d.m, d.n, d.k, d.l), (128, 16384, 4096, 4096));
    }

    #[test]
    fn conv_dims_lowered_correctly() {
        // C5: k1 = 3 -> K = 64 * 9.
        let c5 = &conv_chains()[4];
        let d = c5.chain.dims();
        assert_eq!(d.m, 56 * 56);
        assert_eq!(d.k, 64 * 9);
        assert_eq!(d.n, 64);
        assert_eq!(d.l, 256);
    }

    #[test]
    fn gated_chains_are_gated() {
        for w in gated_ffn_chains() {
            assert!(w.chain.kind().is_gated(), "{}", w.id);
            assert_eq!(w.chain.dims().m, 128);
        }
    }

    #[test]
    fn ids_unique() {
        let mut ids: Vec<_> = all_workloads().iter().map(|w| w.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 26);
    }
}
