//! Table I: percentage of execution time spent in FFN layers.
//!
//! One transformer layer = attention (projections + score/context
//! GEMMs) + FFN + a small element-wise remainder (norms, residuals,
//! rotary). Each part is timed with the same bandwidth/compute-bound
//! kernel model as the rest of the repository; the FFN share is the
//! FFN fraction of the layer total. The paper's setting is a sequence
//! length of 512.

use crate::models::ModelSpec;
use flashfuser_core::MachineDescriptor;
use flashfuser_sim::unfused_time;

/// Fraction (0–1) of layer execution time spent in the FFN, for `m`
/// resident tokens (the paper uses `m = seq = 512`).
pub fn ffn_time_share(model: &ModelSpec, m: usize, params: &MachineDescriptor) -> f64 {
    let ffn = unfused_time(&model.ffn_chain(m), params, 0.90).seconds;
    let attn_flops = model.attention_flops(m, m) as f64;
    let attn_bytes = model.attention_bytes(m, m) as f64;
    // Four projection launches plus two batched attention GEMMs.
    let attn = (attn_flops / (params.peak_flops() * 0.90))
        .max(attn_bytes / (params.hbm_bw() * 0.90))
        + 6.0 * params.kernel_launch_s();
    // Norms/residuals/rotary: two passes over the token activations.
    let d = model.hidden as u64;
    let misc_bytes = (4 * m as u64 * d * 2) as f64;
    let misc = misc_bytes / (params.hbm_bw() * 0.90) + 2.0 * params.kernel_launch_s();
    ffn / (ffn + attn + misc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::model_zoo;

    #[test]
    fn table_i_shares_in_range() {
        // Paper Table I at seq 512: GPT-6.7B 61%, LLaMA-1B 57%,
        // OPT-1.3B 53%, BERT 47%, GPT-2 42%. The model must land in the
        // 40–70% band with the same ordering trend (bigger FFN ratio ->
        // bigger share).
        let p = MachineDescriptor::h100_sxm();
        let zoo = model_zoo();
        let mut by_name = std::collections::HashMap::new();
        for m in &zoo {
            let s = ffn_time_share(m, 512, &p);
            assert!((0.35..0.75).contains(&s), "{}: {s}", m.name);
            by_name.insert(m.name, s);
        }
        // GPT-6.7B (4x FFN ratio, d=4096) spends more of its time in the
        // FFN than GPT-2 (d=768), as in Table I.
        assert!(by_name["GPT-6.7B"] > by_name["GPT-2"]);
    }

    #[test]
    fn share_grows_with_ffn_width() {
        let p = MachineDescriptor::h100_sxm();
        let narrow = ModelSpec {
            name: "narrow",
            layers: 1,
            hidden: 1024,
            ffn_hidden: 2048,
            gated: false,
        };
        let wide = ModelSpec {
            name: "wide",
            layers: 1,
            hidden: 1024,
            ffn_hidden: 8192,
            gated: false,
        };
        assert!(ffn_time_share(&wide, 512, &p) > ffn_time_share(&narrow, 512, &p));
    }
}
