//! The transformer model zoo used by Table I and the end-to-end
//! evaluation (Figs. 16/17).

use flashfuser_graph::ChainSpec;
use flashfuser_tensor::Activation;

/// Architecture parameters of one decoder/encoder model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Display name.
    pub name: &'static str,
    /// Number of transformer layers.
    pub layers: usize,
    /// Model (hidden) dimension `d`.
    pub hidden: usize,
    /// FFN inner dimension.
    pub ffn_hidden: usize,
    /// Whether the FFN is gated (SwiGLU).
    pub gated: bool,
}

impl ModelSpec {
    /// The FFN chain of one layer for `m` resident tokens
    /// (batch x sequence), in the two-GEMM form the fusion engine
    /// consumes.
    pub fn ffn_chain(&self, m: usize) -> ChainSpec {
        if self.gated {
            ChainSpec::gated_ffn(
                m,
                self.ffn_hidden,
                self.hidden,
                self.hidden,
                Activation::Silu,
            )
            .named(self.name)
        } else {
            ChainSpec::standard_ffn(
                m,
                self.ffn_hidden,
                self.hidden,
                self.hidden,
                Activation::Gelu,
            )
            .named(self.name)
        }
    }

    /// FLOPs of the attention part of one layer for `m` tokens attending
    /// over `seq` positions: QKV + output projections plus the two
    /// score/context batched GEMMs.
    pub fn attention_flops(&self, m: usize, seq: usize) -> u64 {
        let d = self.hidden as u64;
        let m = m as u64;
        let seq = seq as u64;
        4 * 2 * m * d * d + 2 * 2 * m * seq * d
    }

    /// Global bytes of the attention part (f16): projection weights, the
    /// token activations and the KV tensors.
    pub fn attention_bytes(&self, m: usize, seq: usize) -> u64 {
        let d = self.hidden as u64;
        let m = m as u64;
        let seq = seq as u64;
        4 * d * d * 2 + 6 * m * d * 2 + 2 * seq * d * 2 + 2 * m * seq * 2
    }
}

/// The models of Table I plus the large models of Fig. 16.
pub fn model_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "GPT-6.7B",
            layers: 32,
            hidden: 4096,
            ffn_hidden: 16384,
            gated: false,
        },
        ModelSpec {
            name: "LLaMA-1B",
            layers: 22,
            hidden: 2048,
            ffn_hidden: 5632,
            gated: true,
        },
        ModelSpec {
            name: "OPT-1.3B",
            layers: 24,
            hidden: 2048,
            ffn_hidden: 8192,
            gated: false,
        },
        ModelSpec {
            name: "BERT",
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            gated: false,
        },
        ModelSpec {
            name: "GPT-2",
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            gated: false,
        },
    ]
}

/// The large models of Fig. 16: Llama3-70B, Qwen2.5-14B/32B.
pub fn large_model_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "llama3-70B",
            layers: 80,
            hidden: 8192,
            ffn_hidden: 28672,
            gated: true,
        },
        ModelSpec {
            name: "qwen2_5-14B",
            layers: 48,
            hidden: 5120,
            ffn_hidden: 13824,
            gated: true,
        },
        ModelSpec {
            name: "qwen2_5-32B",
            layers: 64,
            hidden: 5120,
            ffn_hidden: 27648,
            gated: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_contains_table_i_models() {
        let names: Vec<_> = model_zoo().iter().map(|m| m.name).collect();
        for expected in ["GPT-6.7B", "LLaMA-1B", "OPT-1.3B", "BERT", "GPT-2"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn ffn_chain_shapes() {
        let gpt = &model_zoo()[0];
        let c = gpt.ffn_chain(512);
        let d = c.dims();
        assert_eq!((d.m, d.n, d.k, d.l), (512, 16384, 4096, 4096));
        assert!(!c.kind().is_gated());
        let llama = &model_zoo()[1];
        assert!(llama.ffn_chain(128).kind().is_gated());
    }

    #[test]
    fn attention_accounting_scales() {
        let m = &model_zoo()[0];
        assert!(m.attention_flops(512, 512) > m.attention_flops(128, 128));
        assert!(m.attention_bytes(512, 512) > m.attention_bytes(128, 128));
    }

    #[test]
    fn large_models_are_gated_and_big() {
        for m in large_model_zoo() {
            assert!(m.gated);
            assert!(m.hidden >= 5120);
        }
    }
}
