//! The transformer model zoo used by Table I and the end-to-end
//! evaluation (Figs. 16/17).
//!
//! Besides the closed-form accounting ([`ModelSpec::attention_flops`]
//! etc.) the zoo can lower whole decoder layers into [`OpGraph`]s
//! ([`ModelSpec::graph`]), which is what lets the end-to-end figures
//! run through the whole-graph compiler
//! (`flashfuser::Compiler::compile_graph`) instead of closed-form math.

use flashfuser_graph::op::NodeId;
use flashfuser_graph::{ChainSpec, OpGraph, OpKind};
use flashfuser_tensor::{Activation, BinaryOp};

/// Architecture parameters of one decoder/encoder model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Display name.
    pub name: &'static str,
    /// Number of transformer layers.
    pub layers: usize,
    /// Model (hidden) dimension `d`.
    pub hidden: usize,
    /// FFN inner dimension.
    pub ffn_hidden: usize,
    /// Whether the FFN is gated (SwiGLU).
    pub gated: bool,
}

impl ModelSpec {
    /// The FFN chain of one layer for `m` resident tokens
    /// (batch x sequence), in the two-GEMM form the fusion engine
    /// consumes.
    pub fn ffn_chain(&self, m: usize) -> ChainSpec {
        if self.gated {
            ChainSpec::gated_ffn(
                m,
                self.ffn_hidden,
                self.hidden,
                self.hidden,
                Activation::Silu,
            )
            .named(self.name)
        } else {
            ChainSpec::standard_ffn(
                m,
                self.ffn_hidden,
                self.hidden,
                self.hidden,
                Activation::Gelu,
            )
            .named(self.name)
        }
    }

    /// FLOPs of the attention part of one layer for `m` tokens attending
    /// over `seq` positions: QKV + output projections plus the two
    /// score/context batched GEMMs.
    pub fn attention_flops(&self, m: usize, seq: usize) -> u64 {
        let d = self.hidden as u64;
        let m = m as u64;
        let seq = seq as u64;
        4 * 2 * m * d * d + 2 * 2 * m * seq * d
    }

    /// Global bytes of the attention part (f16): projection weights, the
    /// token activations and the KV tensors.
    pub fn attention_bytes(&self, m: usize, seq: usize) -> u64 {
        let d = self.hidden as u64;
        let m = m as u64;
        let seq = seq as u64;
        4 * d * d * 2 + 6 * m * d * 2 + 2 * seq * d * 2 + 2 * m * seq * 2
    }

    /// Lowers one decoder layer onto `x` (the `[m, hidden]` residual
    /// stream) inside `g`, returning the layer's output node.
    ///
    /// The layer is attention + FFN + element-wise remainder:
    ///
    /// * attention — Q/K/V projections, `Q x K^T` scores (via a
    ///   `Transpose` node), a real scaled rowwise [`OpKind::Softmax`]
    ///   (`scale_k = hidden`), the context GEMM and the output
    ///   projection. The `scores -> softmax -> ctx` window is a
    ///   recoverable attention chain: the partitioner fuses it with the
    ///   row statistics held in the cluster's DSM tier, while the
    ///   projections and the transpose stay ordinary per-op work
    ///   outside the window;
    /// * the FFN as the canonical two-GEMM chain expansion
    ///   ([`OpGraph::append_chain`] of [`ModelSpec::ffn_chain`]), which
    ///   the graph partitioner recovers and fuses;
    /// * residual adds after both halves.
    ///
    /// Sequence length equals `m` (every resident token attends over
    /// the whole batch window), matching the closed-form accounting in
    /// [`crate::e2e`].
    fn lower_layer(&self, g: &mut OpGraph, x: NodeId, layer: usize, m: usize) -> NodeId {
        let d = self.hidden;
        let l = |part: &str| format!("l{layer}.{part}");
        let wq = g.add_input(&l("Wq"), d, d);
        let wk = g.add_input(&l("Wk"), d, d);
        let wv = g.add_input(&l("Wv"), d, d);
        let wo = g.add_input(&l("Wo"), d, d);
        let q = g.add_node(OpKind::Matmul, vec![x, wq], &l("q"));
        let k = g.add_node(OpKind::Matmul, vec![x, wk], &l("k"));
        let v = g.add_node(OpKind::Matmul, vec![x, wv], &l("v"));
        let kt = g.add_node(OpKind::Transpose, vec![k], &l("kT"));
        let scores = g.add_node(OpKind::Matmul, vec![q, kt], &l("scores"));
        let probs = g.add_node(OpKind::Softmax { scale_k: d }, vec![scores], &l("softmax"));
        let ctx = g.add_node(OpKind::Matmul, vec![probs, v], &l("ctx"));
        let attn = g.add_node(OpKind::Matmul, vec![ctx, wo], &l("attn"));
        let resid1 = g.add_node(
            OpKind::Elementwise(BinaryOp::Add),
            vec![attn, x],
            &l("resid1"),
        );
        let ffn = g.append_chain(&self.ffn_chain(m), resid1, &l("ffn"));
        g.add_node(
            OpKind::Elementwise(BinaryOp::Add),
            vec![ffn, resid1],
            &l("resid2"),
        )
    }

    /// Lowers `layers` decoder layers for `m` resident tokens into an
    /// operator DAG ending in an `Output` marker — the whole-graph
    /// compilation input. Every layer's FFN *and* its attention window
    /// are recoverable fused chains of identical shape, so a plan cache
    /// serves layers 2..n from layer 1's searches.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero.
    pub fn graph(&self, m: usize, layers: usize) -> OpGraph {
        assert!(layers > 0, "a model graph needs at least one layer");
        let mut g = OpGraph::new();
        let mut x = g.add_input("tokens", m, self.hidden);
        for layer in 0..layers {
            x = self.lower_layer(&mut g, x, layer, m);
        }
        g.add_node(OpKind::Output, vec![x], "out");
        g
    }

    /// One decoder layer as an operator DAG ([`ModelSpec::graph`] with
    /// `layers = 1`).
    pub fn layer_graph(&self, m: usize) -> OpGraph {
        self.graph(m, 1)
    }

    /// A structurally identical model shrunk to `hidden`: same layer
    /// count, gatedness and (approximate) FFN expansion ratio, with the
    /// FFN width rounded up to the 16-wide MMA granule so the scaled
    /// FFN chain stays fusible. Numeric differential validation runs
    /// real `f32` tensors through every operator, which is affordable
    /// at `hidden ≈ 64` but not at production widths — the scaled model
    /// exercises exactly the same graph structure, partitioning and
    /// dataflow at a size the oracle can execute.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is zero.
    pub fn scaled_to(&self, hidden: usize) -> ModelSpec {
        assert!(hidden > 0, "scaled model needs a positive hidden size");
        let ffn = (self.ffn_hidden * hidden / self.hidden).max(1);
        ModelSpec {
            hidden,
            ffn_hidden: ffn.div_ceil(16) * 16,
            ..*self
        }
    }
}

/// Looks a model up across [`model_zoo`] and [`large_model_zoo`],
/// ignoring ASCII case — the lookup behind the CLI `graph` subcommand
/// and the server's graph requests.
pub fn find_model(name: &str) -> Option<ModelSpec> {
    model_zoo()
        .into_iter()
        .chain(large_model_zoo())
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

/// The models of Table I plus the large models of Fig. 16.
pub fn model_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "GPT-6.7B",
            layers: 32,
            hidden: 4096,
            ffn_hidden: 16384,
            gated: false,
        },
        ModelSpec {
            name: "LLaMA-1B",
            layers: 22,
            hidden: 2048,
            ffn_hidden: 5632,
            gated: true,
        },
        ModelSpec {
            name: "OPT-1.3B",
            layers: 24,
            hidden: 2048,
            ffn_hidden: 8192,
            gated: false,
        },
        ModelSpec {
            name: "BERT",
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            gated: false,
        },
        ModelSpec {
            name: "GPT-2",
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            gated: false,
        },
    ]
}

/// The large models of Fig. 16: Llama3-70B, Qwen2.5-14B/32B.
pub fn large_model_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "llama3-70B",
            layers: 80,
            hidden: 8192,
            ffn_hidden: 28672,
            gated: true,
        },
        ModelSpec {
            name: "qwen2_5-14B",
            layers: 48,
            hidden: 5120,
            ffn_hidden: 13824,
            gated: true,
        },
        ModelSpec {
            name: "qwen2_5-32B",
            layers: 64,
            hidden: 5120,
            ffn_hidden: 27648,
            gated: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_contains_table_i_models() {
        let names: Vec<_> = model_zoo().iter().map(|m| m.name).collect();
        for expected in ["GPT-6.7B", "LLaMA-1B", "OPT-1.3B", "BERT", "GPT-2"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn ffn_chain_shapes() {
        let gpt = &model_zoo()[0];
        let c = gpt.ffn_chain(512);
        let d = c.dims();
        assert_eq!((d.m, d.n, d.k, d.l), (512, 16384, 4096, 4096));
        assert!(!c.kind().is_gated());
        let llama = &model_zoo()[1];
        assert!(llama.ffn_chain(128).kind().is_gated());
    }

    #[test]
    fn attention_accounting_scales() {
        let m = &model_zoo()[0];
        assert!(m.attention_flops(512, 512) > m.attention_flops(128, 128));
        assert!(m.attention_bytes(512, 512) > m.attention_bytes(128, 128));
    }

    #[test]
    fn large_models_are_gated_and_big() {
        for m in large_model_zoo() {
            assert!(m.gated);
            assert!(m.hidden >= 5120);
        }
    }

    #[test]
    fn layer_graph_is_well_shaped_and_counts_attention_gemms() {
        let bert = &model_zoo()[3];
        let g = bert.layer_graph(128);
        let shapes = g.infer_shapes().unwrap();
        // The residual stream ends at [m, hidden].
        assert_eq!(*shapes.last().unwrap(), (128, bert.hidden));
        // 6 attention GEMMs (q/k/v, scores, ctx, out) + 2 FFN GEMMs.
        assert_eq!(g.matmul_count(), 8);
        let gated = &model_zoo()[1]; // LLaMA-1B
        assert_eq!(gated.layer_graph(128).matmul_count(), 9);
    }

    #[test]
    fn model_graph_ffns_are_recoverable_per_layer() {
        let model = &model_zoo()[4]; // GPT-2
        let g = model.graph(64, 3);
        let matches = flashfuser_graph::match_chains(&g).unwrap();
        assert_eq!(
            matches.len(),
            6,
            "one fusible attention window and one FFN per layer"
        );
        let (attn, ffn): (Vec<_>, Vec<_>) =
            matches.iter().partition(|m| m.chain.kind().is_attention());
        assert_eq!(attn.len(), 3);
        assert_eq!(ffn.len(), 3);
        for m in &attn {
            // seq = m = 64, scaled by 1/sqrt(hidden).
            assert_eq!(
                m.chain,
                ChainSpec::attention(64, 64, model.hidden, model.hidden, true)
            );
        }
        for m in &ffn {
            // Names are metadata; the structure is exactly the layer's
            // FFN chain.
            assert_eq!(m.chain, model.ffn_chain(64).named(""));
            assert_eq!(m.chain.fingerprint(), model.ffn_chain(64).fingerprint());
        }
    }

    #[test]
    fn scaled_models_keep_structure_and_granule() {
        for model in model_zoo().into_iter().chain(large_model_zoo()) {
            let small = model.scaled_to(64);
            assert_eq!(small.hidden, 64);
            assert_eq!(small.gated, model.gated);
            assert_eq!(small.layers, model.layers);
            assert_eq!(
                small.ffn_hidden % 16,
                0,
                "{}: FFN must stay tileable",
                model.name
            );
            // The expansion ratio survives within rounding.
            let want = model.ffn_hidden as f64 / model.hidden as f64;
            let got = small.ffn_hidden as f64 / small.hidden as f64;
            assert!(
                (got - want).abs() < 0.3,
                "{}: ratio {got} vs {want}",
                model.name
            );
            // The scaled layer graph recovers the attention window and
            // the same FFN chain family.
            let matches = flashfuser_graph::match_chains(&small.layer_graph(16)).unwrap();
            assert_eq!(matches.len(), 2, "{}", model.name);
            let ffn = matches
                .iter()
                .find(|m| !m.chain.kind().is_attention())
                .unwrap();
            assert_eq!(ffn.chain.kind().is_gated(), model.gated);
            assert!(matches.iter().any(|m| m.chain.kind().is_attention()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layer_graph_panics() {
        model_zoo()[0].graph(128, 0);
    }
}
