//! Walk the search space of a gated FFN: pruning cascade, top-K ranking
//! and the winning dataflow.
//!
//! Run with `cargo run --release --example gated_ffn_search`.

use flashfuser::core::prune::{count_cascade, PruneConfig};
use flashfuser::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = ChainSpec::gated_ffn(128, 8192, 2048, 2048, Activation::Silu).named("S4");
    let params = MachineDescriptor::h100_sxm();

    println!("== pruning cascade for {chain} ==");
    let stats = count_cascade(&chain, &params, &PruneConfig::default());
    println!("{stats}\n");

    println!("== top-K candidates ==");
    let engine = SearchEngine::new(params.clone());
    let mut profiler = SimProfiler::new(params.clone());
    let result = engine.search_with_profiler(&chain, &SearchConfig::default(), &mut profiler)?;
    for (i, ranked) in result.top_k().iter().enumerate() {
        let marker = if i == result.best_index() { "*" } else { " " };
        println!(
            "{marker} rank {i}: est {:>8.2} us, measured {:>8.2} us  {}",
            ranked.est_seconds * 1e6,
            ranked.measured.unwrap().seconds * 1e6,
            ranked.analysis.plan().summary()
        );
    }
    println!(
        "\nsearch stats: {} candidates considered, {} feasible, {:.2} s analysis",
        result.stats().considered,
        result.stats().feasible,
        result.stats().analysis_seconds
    );
    Ok(())
}
