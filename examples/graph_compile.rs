//! Whole-graph compilation: lower a small transformer into an operator
//! DAG, partition it into fusible chains + unfused remainders, and
//! stitch the per-segment plans into an end-to-end figure.
//!
//! Run with `cargo run --release --example graph_compile`.

use flashfuser::prelude::*;
use flashfuser::workloads::ModelSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A LLaMA-style toy decoder: gated FFN, two layers of one shape.
    let model = ModelSpec {
        name: "toy-llama",
        layers: 2,
        hidden: 256,
        ffn_hidden: 1024,
        gated: true,
    };
    let graph = model.graph(128, 2);
    println!(
        "graph: {} node(s), {} matmul(s), longest matmul chain {}",
        graph.len(),
        graph.matmul_count(),
        graph.matmul_chain_len()
    );

    // The matcher recovers one gated FFN chain per layer; attention
    // stays unfused (its score/context GEMMs take computed operands,
    // not dedicated weights).
    for (i, m) in match_chains(&graph)?.iter().enumerate() {
        println!("  fusible chain {}: {}", i + 1, m.chain);
    }

    let compiler = Compiler::new(MachineDescriptor::h100_sxm());
    let plan = compiler.compile_graph(&graph)?;
    println!("segments:");
    for (i, segment) in plan.segments.iter().enumerate() {
        match segment {
            CompiledSegment::Fused(f) => println!(
                "  {}. fused   {:>8.2} us  {} ({})",
                i + 1,
                f.stitched_seconds() * 1e6,
                f.compiled.plan.summary(),
                if f.searched { "searched" } else { "cache hit" },
            ),
            CompiledSegment::Unfused(u) => println!(
                "  {}. unfused {:>8.2} us  {} kernel(s)",
                i + 1,
                u.seconds * 1e6,
                u.nodes.len(),
            ),
        }
    }
    println!(
        "stitched {:.2} us vs {:.2} us all-unfused -> {:.2}x, {} search(es), cache: {}",
        plan.seconds * 1e6,
        plan.unfused_seconds * 1e6,
        plan.speedup(),
        compiler.searches_run(),
        compiler.cache_stats()
    );
    assert_eq!(compiler.searches_run(), 1, "layer 2 must hit the cache");
    Ok(())
}
