//! Quickstart: compile and execute one fused gated-FFN chain.
//!
//! Run with `cargo run --release --example quickstart`.

use flashfuser::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Llama-2-7B gated FFN subgraph (Table VI, S3).
    let chain = ChainSpec::gated_ffn(128, 11008, 4096, 4096, Activation::Silu).named("S3");
    println!("workload: {chain}");
    println!(
        "intermediate: {} KB (SMEM limit: 227 KB)",
        chain.dims().intermediate_bytes_f16() / 1024
    );

    // Search for the best fused plan (Algorithm 2) and profile the
    // top-K finalists on the machine model.
    let params = MachineDescriptor::h100_sxm();
    let engine = SearchEngine::new(params.clone());
    let mut profiler = SimProfiler::new(params.clone());
    let result = engine.search_with_profiler(&chain, &SearchConfig::default(), &mut profiler)?;
    let best = result.best();
    println!("best plan:  {}", best.analysis.plan().summary());
    println!("estimated:  {:.2} us", best.est_seconds * 1e6);
    println!("measured:   {:.2} us", best.measured.unwrap().seconds * 1e6);

    // Compare against the unfused execution.
    let unfused = unfused_time(&chain, &params, 0.90);
    println!(
        "unfused:    {:.2} us  -> speedup {:.2}x",
        unfused.seconds * 1e6,
        unfused.seconds / best.measured.unwrap().seconds
    );

    // Functional check on a scaled-down instance of the same shape
    // family: the fused interpreter must reproduce the reference.
    let small = ChainSpec::gated_ffn(32, 128, 64, 64, Activation::Silu);
    let small_plan = engine
        .search(&small, &SearchConfig::default())?
        .best()
        .analysis
        .plan()
        .clone();
    let inputs = small.make_inputs(42);
    let mut counters = TrafficCounters::new();
    let fused_out = execute_fused(&small_plan, &inputs, &mut counters)?;
    let reference = small.reference_output(&inputs)?;
    assert!(reference.approx_eq(&fused_out, 1e-3)?);
    println!(
        "functional check: fused result matches reference (max err {:.2e})",
        reference.max_abs_diff(&fused_out)?
    );
    println!("traffic: {counters}");
    Ok(())
}
