//! Batch compilation through the content-addressed plan cache.
//!
//! Run with `cargo run --release --example batch_compile`.
//!
//! Models one serving tick of an inference fleet: a burst of
//! compilation requests in which most graphs repeat (different layers
//! of the same model share the FFN shape, and different requests share
//! layers). The batch front door dedupes content-identical graphs,
//! shards the distinct ones across worker threads, and remembers every
//! result — so the second burst compiles from cache alone.

use flashfuser::prelude::*;
use flashfuser::CompilerOptions;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = MachineDescriptor::h100_sxm();

    // Optional: point the cache at a directory to persist plans across
    // process restarts (the CLI's `--cache-dir` does the same).
    let cache_dir = std::env::temp_dir().join("flashfuser-example-plans");
    let compiler = Compiler::with_options(
        params.clone(),
        CompilerOptions::new().with_cache_dir(&cache_dir),
    )?;

    // A burst of 9 requests over 3 distinct graphs. Names differ per
    // request (they are metadata); content decides identity.
    let gpt2 = ChainSpec::standard_ffn(128, 3072, 768, 768, Activation::Relu);
    let dlrm = ChainSpec::standard_ffn(128, 512, 416, 256, Activation::Relu);
    let small = ChainSpec::standard_ffn(128, 512, 256, 256, Activation::Relu);
    let batch: Vec<ChainSpec> = (0..3)
        .flat_map(|layer| {
            [
                gpt2.clone().named(&format!("gpt2-ffn-{layer}")),
                dlrm.clone().named(&format!("dlrm-mlp-{layer}")),
                small.clone().named(&format!("head-{layer}")),
            ]
        })
        .collect();

    println!("burst 1: {} requests, 3 distinct graphs", batch.len());
    let t0 = Instant::now();
    let results = compiler.compile_batch(&batch);
    let cold_s = t0.elapsed().as_secs_f64();
    for (chain, result) in batch.iter().zip(&results) {
        let compiled = result.as_ref().map_err(Clone::clone)?;
        println!(
            "  {:<12} {:<40} {:>8.2} us",
            chain.name(),
            compiled.plan.summary(),
            compiled.measured_seconds * 1e6
        );
    }
    println!(
        "  -> {:.3} s wall, {} searches for {} requests, cache: {}",
        cold_s,
        compiler.searches_run(),
        batch.len(),
        compiler.cache_stats()
    );

    // The same burst again: pure cache, zero searches.
    let before = compiler.searches_run();
    let t0 = Instant::now();
    let warm = compiler.compile_batch(&batch);
    let warm_s = t0.elapsed().as_secs_f64();
    assert!(warm.iter().all(Result::is_ok));
    assert_eq!(
        compiler.searches_run(),
        before,
        "warm burst must not search"
    );
    // Bit-identical to the cold results, per the determinism guarantee.
    for (a, b) in results.iter().zip(&warm) {
        assert_eq!(a.as_ref().unwrap().plan, b.as_ref().unwrap().plan);
    }
    println!(
        "burst 2: {:.6} s wall ({}x faster), plans bit-identical, cache: {}",
        warm_s,
        (cold_s / warm_s).round(),
        compiler.cache_stats()
    );
    println!("plans persisted under {}", cache_dir.display());
    Ok(())
}
