//! End-to-end transformer inference with and without FlashFuser.
//!
//! Run with `cargo run --release --example e2e_inference`.

use flashfuser::core::MachineDescriptor;
use flashfuser::workloads::{e2e_speedup, ffn_time_share, model_zoo};

fn main() {
    let params = MachineDescriptor::h100_sxm();
    println!(
        "{:<12}{:>12}{:>14}{:>12}",
        "model", "FFN share", "FFN speedup", "E2E"
    );
    for model in model_zoo() {
        let share = ffn_time_share(&model, 512, &params);
        let r = e2e_speedup(&model, 128, &params);
        println!(
            "{:<12}{:>11.1}%{:>14.2}{:>12.3}",
            model.name,
            100.0 * share,
            r.ffn_speedup,
            r.speedup
        );
    }
    println!("\nAmdahl in action: the E2E speedup is the FFN kernel speedup");
    println!("diluted by the non-FFN fraction of each layer (paper: 1.24x avg).");
}
