//! Fuse a ResNet conv->ReLU->conv block: im2col lowering, fusion and a
//! full functional validation against the direct convolution.
//!
//! Run with `cargo run --release --example conv_chain`.

use flashfuser::graph::ConvChainSpec;
use flashfuser::prelude::*;
use flashfuser::tensor::rng::seeded_matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down C5-style block (3x3 then 1x1) so the functional
    // validation runs in milliseconds (IC=16 keeps K = IC*9 = 144 a
    // multiple of one MMA granule); the Table V geometry is used for the
    // timing comparison below.
    let block = ConvChainSpec::new(16, 8, 8, 16, 32, 3, 1);
    let chain = block.to_chain();
    println!("conv block lowered to GEMM chain: {chain}");

    // Functional validation: fused GEMM-chain execution == direct convs.
    let params = MachineDescriptor::h100_sxm();
    let engine = SearchEngine::new(params.clone());
    let plan = engine
        .search(&chain, &SearchConfig::default())?
        .best()
        .analysis
        .plan()
        .clone();
    let input = seeded_matrix(block.in_channels, block.height * block.width, 7);
    let w1 = seeded_matrix(block.oc1, block.conv1().gemm_k(), 8);
    let w2 = seeded_matrix(block.oc2, block.conv2().gemm_k(), 9);
    let direct = block.reference_direct(&input, &w1, &w2)?;

    let patches = flashfuser::tensor::im2col::im2col(&input, &block.conv1())?;
    let inputs = flashfuser::graph::chain::ChainInputs {
        a: patches,
        b: w1.transpose(),
        b_gate: None,
        d: w2.transpose(),
    };
    let mut counters = TrafficCounters::new();
    let fused = execute_fused(&plan, &inputs, &mut counters)?;
    assert!(direct.transpose().approx_eq(&fused, 1e-3)?);
    println!("fused conv chain matches direct convolution ✔");

    // Timing on the real Table V geometry (C5).
    let c5 = ConvChainSpec::new(64, 56, 56, 64, 256, 3, 1).to_chain();
    let mut profiler = SimProfiler::new(params.clone());
    let best = engine.search_with_profiler(&c5, &SearchConfig::default(), &mut profiler)?;
    let fused_s = best.best().measured.unwrap().seconds;
    let unfused = unfused_time(&c5, &params, 0.90);
    println!(
        "C5: fused {:.2} us vs unfused {:.2} us ({:.2}x)",
        fused_s * 1e6,
        unfused.seconds * 1e6,
        unfused.seconds / fused_s
    );
    Ok(())
}
